(* Quickstart: the complete chain of the paper in ~60 lines — stand up a
   testbed, deploy the Chord DHT through the controller, run lookups,
   inspect the logs.

     dune exec examples/quickstart.exe *)

open Splay
module Apps = Splay_apps

let () =
  (* a simulated PlanetLab slice: 50 hosts plus the controller machine *)
  let platform = Platform.create ~seed:7 (Platform.Planetlab 50) in
  Platform.run platform (fun p ->
      let ctl = Platform.controller p in

      (* the application: the paper's Chord, registered so we can poke it *)
      let nodes = ref [] in
      let chord_main =
        Apps.Chord.app
          ~config:{ Apps.Chord.default_config with m = 20; join_delay_per_position = 0.5 }
          ~register:(fun node -> nodes := node :: !nodes)
      in

      (* the job descriptor, exactly as it would head a submitted script *)
      let descriptor =
        Descriptor.parse
          {|--[[ BEGIN SPLAY RESOURCES RESERVATION
             nb_splayd 30
             nodes head 1
             END SPLAY RESOURCES RESERVATION ]]|}
      in

      Printf.printf "deploying %d Chord nodes...\n" descriptor.Descriptor.nb_splayd;
      let deployment = Controller.deploy ctl ~name:"chord" ~main:chord_main descriptor in
      Printf.printf "deployed %d instances at t=%.1fs (virtual)\n"
        (Controller.live_count deployment)
        (Platform.now p);

      (* let the ring converge: staggered joins + a few stabilization rounds *)
      Env.sleep ((30.0 *. 0.5) +. 200.0);

      (* look up a few random keys from a random node *)
      let rng = Rng.split (Engine.rng (Platform.engine p)) in
      let origin = Rng.pick_list rng !nodes in
      Printf.printf "\nlookups from node %06x:\n" (Apps.Chord.id origin);
      for _ = 1 to 8 do
        let key = Rng.int rng (Misc.pow2 20) in
        match Apps.Chord.lookup origin key with
        | Some (owner, hops) ->
            Printf.printf "  key %06x -> node %06x  (%d hops)\n" key owner.Apps.Node.id hops
        | None -> Printf.printf "  key %06x -> lookup failed\n" key
      done;

      (* the ring, as the framework sees it *)
      let ring = Apps.Chord.ring_of !nodes in
      Printf.printf "\nring: %d/%d nodes linked in id order\n" (List.length ring)
        (List.length !nodes);

      Controller.undeploy deployment;
      Printf.printf "undeployed at t=%.1fs\n" (Platform.now p);
      List.iter Daemon.shutdown (Platform.daemons p);
      ignore
        (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
             Env.stop (Controller.env ctl))))
