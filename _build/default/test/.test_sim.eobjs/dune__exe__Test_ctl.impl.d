test/test_ctl.ml: Addr Alcotest Codec Controller Daemon Descriptor Engine Env Fun Int List Log Net Printexc Printf Rpc Sandbox Splay_ctl Splay_net Splay_runtime Splay_sim String Testbed
