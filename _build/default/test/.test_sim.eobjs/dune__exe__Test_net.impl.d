test/test_net.ml: Addr Alcotest Array Engine Float List Net Printf Rng Splay_net Splay_sim Testbed Topology
