test/test_sim.ml: Alcotest Array Buffer Channel Engine Float Fun Heap Int Ivar List Printf QCheck QCheck_alcotest Rng Splay_sim
