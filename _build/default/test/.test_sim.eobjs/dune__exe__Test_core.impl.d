test/test_core.ml: Addr Alcotest Controller Daemon Descriptor Engine Env Float Int List Platform Printf Splay Splay_apps Splay_baselines String Testbed
