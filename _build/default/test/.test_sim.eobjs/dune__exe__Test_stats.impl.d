test/test_stats.ml: Alcotest Array Dist Float List Option QCheck QCheck_alcotest Report Series Splay_stats Summary
