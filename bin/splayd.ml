(* splayd — the real daemon process of the live execution backend.

   Forked by `splay live deploy` (one per logical host), it connects back
   to the controller, hosts application instances over real TCP sockets
   and wall-clock time, and streams heartbeats, log records and
   trace/metrics dumps home. Not meant to be launched by hand; see
   Splay_live.Splayd for the protocol. *)

let () =
  let connect = ref "" in
  let host = ref (-1) in
  let parent = ref 0 in
  let seed = ref 42 in
  let trace = ref false in
  let metrics = ref false in
  let specs =
    [
      ("--connect", Arg.Set_string connect, "HOST:PORT controller control socket");
      ("--host", Arg.Set_int host, "N logical host id of this daemon");
      ("--parent-pid", Arg.Set_int parent, "N controller PID for the orphan watch (0 disables)");
      ("--seed", Arg.Set_int seed, "N per-daemon RNG seed");
      ("--trace", Arg.Set trace, " record an observability trace and ship it at shutdown");
      ("--metrics", Arg.Set metrics, " record metrics-plane rollups and ship them at shutdown");
    ]
  in
  let usage = "splayd --connect HOST:PORT --host N [--parent-pid N] [--seed N] [--trace] [--metrics]" in
  Arg.parse specs
    (fun a ->
      Printf.eprintf "splayd: unexpected argument %S\n%s\n" a usage;
      exit 2)
    usage;
  if !connect = "" || !host < 0 then begin
    Printf.eprintf "splayd: --connect and --host are required\n%s\n" usage;
    exit 2
  end;
  Splay_live.Live_apps.init ();
  exit
    (Splay_live.Splayd.run
       {
         Splay_live.Splayd.connect = !connect;
         host = !host;
         parent = !parent;
         seed = !seed;
         trace = !trace;
         metrics = !metrics;
       })
