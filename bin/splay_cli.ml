(* The splay command-line tool: submit jobs to a simulated testbed, and
   generate / inspect / transform churn descriptions — the workflow the
   paper drives through splayctl's command-line interface.

     splay run --app pastry --nodes 100 --testbed planetlab --lookups 200
     splay run --app chord --nodes 50 --churn-script churn.txt
     splay profile churn.txt
     splay trace gen --concurrent 200 --duration 3000 -o overnet.trace
     splay trace info overnet.trace
     splay trace speedup 5 overnet.trace -o fast.trace
     splay run --app chord --trace run.jsonl && splay trace run.jsonl --critical-path *)

open Cmdliner
open Splay
module Apps = Splay_apps

(* {1 splay run} *)

type app_kind = Chord | Chord_ft | Pastry | Cyclon | Epidemic

let app_conv =
  Arg.enum
    [
      ("chord", Chord); ("chord-ft", Chord_ft); ("pastry", Pastry);
      ("cyclon", Cyclon); ("epidemic", Epidemic);
    ]

type testbed_kind = Tb_planetlab | Tb_modelnet | Tb_cluster

let testbed_conv =
  Arg.enum [ ("planetlab", Tb_planetlab); ("modelnet", Tb_modelnet); ("cluster", Tb_cluster) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* `splay run --domains N` (N > 1): one deployment partitioned across N
   event-loop domains on the conservative windowed parallel engine
   (Fabric/Par). Only the epidemic application runs in this mode today —
   it is the single-run workload the parallel engine was built for; the
   daemon/controller stack stays on the sequential engine. The run goes
   to quiescence (an epidemic flood terminates by itself), so --duration
   is not consulted. *)
let run_parallel ~nodes ~seed ~domains =
  let parts = domains in
  let fab = Fabric.create ~seed ~hosts:nodes ~parts () in
  let graph_rng = Rng.split (Engine.rng (Fabric.engine fab 0)) in
  let addrs = Array.init nodes (fun i -> Addr.make i 9000) in
  let degree = 8 in
  let strides = Array.init degree (fun _ -> 1 + Rng.int graph_rng (max 1 (nodes - 1))) in
  let config = { Apps.Epidemic.fanout = 6; rpc_timeout = 5.0; oneway = true } in
  let insts = Array.make nodes None in
  let env0 = ref None in
  for i = 0 to nodes - 1 do
    let peers = Array.to_list (Array.map (fun s -> addrs.((i + s) mod nodes)) strides) in
    let env = Env.create (Fabric.net_of_host fab i) ~me:addrs.(i) ~nodes:peers in
    if i = 0 then env0 := Some env;
    Apps.Epidemic.app ~config ~register:(fun x -> insts.(i) <- Some x) env
  done;
  Printf.printf "deploying %d x epidemic across %d partitions (lookahead %.4f s)...\n%!" nodes
    parts (Fabric.lookahead fab);
  let origin = match insts.(0) with Some x -> x | None -> assert false in
  let env0 = match !env0 with Some e -> e | None -> assert false in
  ignore (Env.thread env0 ~name:"rumor-origin" (fun () -> Apps.Epidemic.broadcast origin "r0"));
  let t0 = Unix.gettimeofday () in
  let info = Fabric.run ~domains fab in
  let wall = Unix.gettimeofday () -. t0 in
  let covered = ref 0 in
  Array.iter
    (function Some x when Apps.Epidemic.has_received x "r0" -> incr covered | _ -> ())
    insts;
  Printf.printf "parallel run: %d windows on %d worker domains (%d requested), %.2f s wall\n"
    info.Par.windows
    (Dpool.effective (min domains parts))
    domains wall;
  Printf.printf "coverage: %d/%d nodes received the rumor (%.1f%%)\n" !covered nodes
    (100.0 *. Float.of_int !covered /. Float.of_int nodes);
  Printf.printf "network: %d messages, %d MB, %d dropped\n" (Fabric.messages_sent fab)
    (Fabric.bytes_sent fab / 1024 / 1024)
    (Fabric.messages_dropped fab)

let run_sequential app testbed hosts nodes duration lookups churn_script churn_trace speedup seed descriptor_file obs_trace metrics_out metrics_window =
  (* Arm the observability layer before the platform exists so daemon
     boot and deployment are part of the trace. *)
  Obs_flags.trace_path := obs_trace;
  Obs_flags.metrics_path := metrics_out;
  Obs_flags.metrics_window := metrics_window;
  Obs_flags.arm ();
  let spec =
    match testbed with
    | Tb_planetlab -> Platform.Planetlab hosts
    | Tb_modelnet -> Platform.Modelnet { hosts = max hosts nodes; bandwidth = None }
    | Tb_cluster -> Platform.Cluster hosts
  in
  let p = Platform.create ~seed spec in
  Platform.run p (fun p ->
      let ctl = Platform.controller p in
      let eng = Platform.engine p in
      let rng = Rng.split (Engine.rng eng) in
      (* a lookup driver where the protocol supports it *)
      let lookup_fn = ref (fun _rng -> None) in
      let main =
        match app with
        | Chord ->
            let nodes_r = ref [] in
            lookup_fn :=
              (fun rng ->
                match List.filter (fun c -> not (Apps.Chord.is_stopped c)) !nodes_r with
                | [] -> None
                | live ->
                    let origin = Rng.pick_list rng live in
                    Option.map
                      (fun (_, h) -> h)
                      (Apps.Chord.lookup origin (Rng.int rng (Misc.pow2 24))));
            fun env -> Apps.Chord.app ~register:(fun c -> nodes_r := c :: !nodes_r) env
        | Chord_ft ->
            let nodes_r = ref [] in
            lookup_fn :=
              (fun rng ->
                match List.filter (fun c -> not (Apps.Chord_ft.is_stopped c)) !nodes_r with
                | [] -> None
                | live ->
                    let origin = Rng.pick_list rng live in
                    Option.map
                      (fun (_, h) -> h)
                      (Apps.Chord_ft.lookup origin (Rng.int rng (Misc.pow2 24))));
            fun env -> Apps.Chord_ft.app ~register:(fun c -> nodes_r := c :: !nodes_r) env
        | Pastry ->
            let nodes_r = ref [] in
            lookup_fn :=
              (fun rng ->
                match List.filter (fun c -> not (Apps.Pastry.is_stopped c)) !nodes_r with
                | [] -> None
                | live ->
                    let origin = Rng.pick_list rng live in
                    Option.map
                      (fun (_, h) -> h)
                      (Apps.Pastry.lookup origin (Rng.int rng (Misc.pow2 32))));
            fun env -> Apps.Pastry.app ~register:(fun c -> nodes_r := c :: !nodes_r) env
        | Cyclon -> fun env -> Apps.Cyclon.app ~register:(fun _ -> ()) env
        | Epidemic -> fun env -> Apps.Epidemic.app ~register:(fun _ -> ()) env
      in
      let nodes =
        match descriptor_file with
        | Some path -> (Descriptor.parse (read_file path)).Descriptor.nb_splayd
        | None -> nodes
      in
      Printf.printf "deploying %d x %s on %s (%d hosts)...\n%!" nodes
        (match app with
        | Chord -> "chord" | Chord_ft -> "chord-ft" | Pastry -> "pastry"
        | Cyclon -> "cyclon" | Epidemic -> "epidemic")
        (match testbed with
        | Tb_planetlab -> "planetlab" | Tb_modelnet -> "modelnet" | Tb_cluster -> "cluster")
        hosts;
      let descriptor =
        match descriptor_file with
        | Some path -> Descriptor.parse (read_file path)
        | None -> Descriptor.make ~bootstrap:(Descriptor.Head 1) nodes
      in
      let t0 = Engine.now eng in
      let dep = Controller.deploy ctl ~name:"cli-job" ~main descriptor in
      Printf.printf "deployed %d instances in %.2f virtual seconds\n%!"
        (Controller.live_count dep) (Engine.now eng -. t0);
      (* splayctl-style job monitoring into the metrics plane *)
      Controller.monitor dep;
      (* churn, if requested *)
      (match (churn_script, churn_trace) with
      | Some path, _ ->
          let script = Script.parse (read_file path) in
          Printf.printf "running churn script %s (%.0f s)\n%!" path (Script.duration script);
          ignore (Replayer.run_script dep script)
      | None, Some path ->
          let trace = Trace.of_string (read_file path) in
          let trace = if speedup <> 1.0 then Transform.speedup speedup trace else trace in
          Printf.printf "replaying trace %s at x%g (%.0f s)\n%!" path speedup
            (Trace.duration trace);
          ignore (Replayer.run_trace dep trace)
      | None, None -> ());
      Env.sleep duration;
      (* measurements *)
      let delays = Dist.create () and failures = ref 0 and hops = Dist.create () in
      for _ = 1 to lookups do
        let t0 = Engine.now eng in
        match !lookup_fn rng with
        | Some h ->
            Dist.add delays (Engine.now eng -. t0);
            Dist.add hops (Float.of_int h)
        | None -> incr failures
      done;
      Printf.printf "\npopulation: %d live instances at t=%s\n" (Controller.live_count dep)
        (Misc.duration_to_string (Engine.now eng));
      if lookups > 0 && not (Dist.is_empty delays) then begin
        Printf.printf "lookups: %d ok, %d failed; avg route %.2f hops\n"
          (Dist.count delays) !failures (Dist.mean hops);
        Printf.printf "delays: p50 %.1f ms, p90 %.1f ms, p99 %.1f ms\n"
          (1000.0 *. Dist.percentile delays 50.0)
          (1000.0 *. Dist.percentile delays 90.0)
          (1000.0 *. Dist.percentile delays 99.0)
      end;
      Printf.printf "network: %d messages, %d MB, %d dropped\n"
        (Net.messages_sent (Platform.net p))
        (Net.bytes_sent (Platform.net p) / 1024 / 1024)
        (Net.messages_dropped (Platform.net p));
      Controller.undeploy dep;
      List.iter Daemon.shutdown (Platform.daemons p);
      ignore
        (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))));
  if not (Obs_flags.finish ()) then exit 1

let run_cmd app testbed hosts nodes duration lookups churn_script churn_trace speedup seed
    descriptor_file obs_trace metrics_out metrics_window domains =
  if domains < 1 then begin
    Printf.eprintf "splay run: --domains expects a positive integer, got %d\n" domains;
    exit 2
  end;
  if domains = 1 then
    run_sequential app testbed hosts nodes duration lookups churn_script churn_trace speedup seed
      descriptor_file obs_trace metrics_out metrics_window
  else begin
    (match app with
    | Epidemic -> ()
    | _ ->
        Printf.eprintf
          "splay run: --domains N > 1 currently supports only --app epidemic (single-run \
           parallel mode)\n";
        exit 2);
    if churn_script <> None || churn_trace <> None || descriptor_file <> None then begin
      Printf.eprintf
        "splay run: --domains N > 1 does not support --churn-script, --churn-trace or \
         --descriptor (churn and the controller stack run on the sequential engine)\n";
      exit 2
    end;
    (* Arm the planes before Fabric.create: partition engines bind their
       clocks to the per-partition recorder states at creation. *)
    Obs_flags.trace_path := obs_trace;
    Obs_flags.metrics_path := metrics_out;
    Obs_flags.metrics_window := metrics_window;
    Obs_flags.arm ();
    run_parallel ~nodes ~seed ~domains;
    if not (Obs_flags.finish ()) then exit 1
  end

let run_term =
  let app_arg =
    Arg.(value & opt app_conv Pastry & info [ "app"; "a" ] ~docv:"APP" ~doc:"Application to deploy.")
  in
  let testbed =
    Arg.(value & opt testbed_conv Tb_cluster & info [ "testbed"; "t" ] ~docv:"TB" ~doc:"Testbed model.")
  in
  let hosts = Arg.(value & opt int 20 & info [ "hosts" ] ~doc:"Number of testbed hosts.") in
  let nodes = Arg.(value & opt int 50 & info [ "nodes"; "n" ] ~doc:"Instances to deploy.") in
  let duration =
    Arg.(value & opt float 180.0 & info [ "duration"; "d" ] ~doc:"Virtual seconds to run before measuring.")
  in
  let lookups = Arg.(value & opt int 100 & info [ "lookups" ] ~doc:"Lookups to measure (DHT apps).") in
  let churn_script =
    Arg.(value & opt (some file) None & info [ "churn-script" ] ~doc:"Synthetic churn script to run.")
  in
  let churn_trace =
    Arg.(value & opt (some file) None & info [ "churn-trace" ] ~doc:"Availability trace to replay.")
  in
  let speedup = Arg.(value & opt float 1.0 & info [ "speedup" ] ~doc:"Trace speed-up factor.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let descriptor =
    Arg.(
      value
      & opt (some file) None
      & info [ "descriptor" ]
          ~doc:"Job file with a BEGIN SPLAY RESOURCES RESERVATION header (overrides --nodes).")
  in
  let obs_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ]
          ~docv:"FILE"
          ~doc:
            "Enable the deterministic observability layer and write its JSONL trace (engine, \
             RPC, network and controller spans plus metrics) to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Enable the metrics plane and write its windowed rollups (splay-metrics/1 JSONL) to \
             $(docv); render with $(b,splay top) $(docv).")
  in
  let metrics_window =
    Arg.(
      value
      & opt (some float) None
      & info [ "metrics-window" ] ~docv:"SECONDS"
          ~doc:"Rollup window width in virtual seconds (default 10).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Partition the run across $(docv) event-loop domains on the conservative windowed \
             parallel engine (currently $(b,--app epidemic) only). $(docv) fixes the schedule; \
             worker domains are clamped to the machine's core count.")
  in
  Term.(
    const run_cmd $ app_arg $ testbed $ hosts $ nodes $ duration $ lookups $ churn_script
    $ churn_trace $ speedup $ seed $ descriptor $ obs_trace $ metrics_out $ metrics_window
    $ domains)

let run_cmd_info = Cmd.info "run" ~doc:"Deploy an application on a simulated testbed and measure it."

(* {1 splay check} *)

let check_cmd list_suites suite seeds jobs base_seed seed_opt nemesis_str no_perturb no_shrink
    trace_dir obs_trace =
  if list_suites then begin
    List.iter
      (fun s -> Printf.printf "%-10s %s\n" s.Check_suite.name s.Check_suite.doc)
      Check_suite.all;
    exit 0
  end;
  let suites =
    match Check_suite.find suite with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "splay check: %s\n" msg;
        exit 1
  in
  let perturb = not no_perturb in
  match seed_opt with
  | Some seed ->
      (* replay mode: one trial, optionally under an explicit nemesis *)
      let suite =
        match suites with
        | [ s ] -> s
        | _ ->
            Printf.eprintf "splay check: --seed needs a single --suite\n";
            exit 1
      in
      let nemesis =
        match nemesis_str with
        | None -> None
        | Some s -> (
            try Some (Nemesis.parse s)
            with Nemesis.Parse_error m ->
              Printf.eprintf "splay check: %s\n" m;
              exit 1)
      in
      Obs_flags.trace_path := obs_trace;
      Obs_flags.arm ();
      let o = Check_runner.run_one ~suite ~seed ?nemesis ~perturb () in
      print_endline (Check_suite.outcome_to_string o);
      if not (Obs_flags.finish ()) then exit 1;
      if Check_suite.failed o then exit 1
  | None ->
      if nemesis_str <> None then begin
        Printf.eprintf "splay check: --nemesis requires --seed\n";
        exit 1
      end;
      let report =
        Check_runner.sweep ~suites ~seeds ~jobs ~base_seed ~perturb
          ~shrink_failures:(not no_shrink) ?trace_dir ()
      in
      List.iter
        (fun r ->
          Printf.printf "%-10s %d seeds: %s\n" r.Check_runner.r_suite r.Check_runner.r_seeds
            (match r.Check_runner.r_failing with
            | [] -> "ok"
            | f ->
                Printf.sprintf "%d FAILING (seeds %s)" (List.length f)
                  (String.concat ", " (List.map string_of_int f))))
        report.Check_runner.rep_suites;
      List.iter
        (fun f ->
          Printf.printf "\n--- %s seed %d: minimal reproducer ---\n" f.Check_runner.f_suite
            f.Check_runner.f_seed;
          print_endline (Check_suite.outcome_to_string f.Check_runner.f_shrunk);
          if f.Check_runner.f_shrink_steps > 0 then
            Printf.printf "shrunk in %d steps from: %s\n" f.Check_runner.f_shrink_steps
              (Nemesis.to_string f.Check_runner.f_outcome.Check_suite.o_nemesis);
          (match f.Check_runner.f_trace with
          | Some p -> Printf.printf "trace: %s\n" p
          | None -> ());
          Printf.printf "replay: %s\n" f.Check_runner.f_replay)
        report.Check_runner.rep_failures;
      Printf.printf "\n%d trials; %d suites failing\n" report.Check_runner.rep_trials
        (List.length report.Check_runner.rep_failures);
      if Check_runner.failed report then exit 1

let check_term =
  let list_f = Arg.(value & flag & info [ "list" ] ~doc:"List the available suites and exit.") in
  let suite =
    Arg.(
      value & opt string "smoke"
      & info [ "suite"; "s" ] ~docv:"SUITE"
          ~doc:"Suite to check (see --list), or $(b,all) for every suite.")
  in
  let seeds = Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Number of seeds to sweep.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:"Domains to sweep on. The failing-seed set is identical for any value.")
  in
  let base_seed = Arg.(value & opt int 1 & info [ "base-seed" ] ~doc:"First seed of the sweep.") in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Replay one trial with this seed instead of sweeping.")
  in
  let nemesis =
    Arg.(
      value
      & opt (some string) None
      & info [ "nemesis" ] ~docv:"SPEC"
          ~doc:"Fault schedule for the --seed trial (default: the generated one).")
  in
  let no_perturb =
    Arg.(value & flag & info [ "no-perturb" ] ~doc:"Disable event-schedule perturbation.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"Re-run each minimal reproducer under tracing and dump its trace into $(docv).")
  in
  let obs_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"(--seed mode) Write the trial's observability trace to $(docv).")
  in
  Term.(
    const check_cmd $ list_f $ suite $ seeds $ jobs $ base_seed $ seed $ nemesis $ no_perturb
    $ no_shrink $ trace_dir $ obs_trace)

let check_cmd_info =
  Cmd.info "check"
    ~doc:
      "Deterministic simulation testing: sweep seeds over protocol suites under fault nemeses, \
       verify invariants, and shrink failures to minimal reproducers."

(* {1 splay profile} *)

let profile_cmd path initial =
  let script = Script.parse (read_file path) in
  Printf.printf "%-8s %-12s %-10s %s\n" "minute" "population" "joins" "leaves";
  List.iter
    (fun (t, pop, j, l) ->
      Printf.printf "%-8.0f %-12d %-10d %d\n" (t /. 60.0) pop j l)
    (Script.profile script ~bin:60.0 ~initial)

let profile_term =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT") in
  let initial = Arg.(value & opt int 0 & info [ "initial" ] ~doc:"Initial population.") in
  Term.(const profile_cmd $ path $ initial)

let profile_cmd_info =
  Cmd.info "profile" ~doc:"Print the expected population profile of a churn script."

(* {1 splay top} *)

let top_cmd metric k prom slo path =
  let slo =
    match slo with
    | None -> None
    | Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i when i > 0 && i < String.length spec - 1 -> (
            let m = String.sub spec 0 i in
            let thr = String.sub spec (i + 1) (String.length spec - i - 1) in
            match float_of_string_opt thr with
            | Some t -> Some (m, t)
            | None ->
                Printf.eprintf "splay top: --slo threshold %S is not a number\n" thr;
                exit 1)
        | _ ->
            Printf.eprintf "splay top: --slo expects METRIC:THRESHOLD, got %S\n" spec;
            exit 1)
  in
  let m =
    try Metrics_analysis.load_file path
    with Sys_error msg ->
      Printf.eprintf "splay top: cannot read metrics dump: %s\n" msg;
      exit 1
  in
  if m.Metrics_analysis.rows = [] then begin
    Printf.eprintf "splay top: no metrics rows in %s (produce one with --metrics-out=FILE)\n" path;
    exit 1
  end;
  if prom then print_string (Metrics_analysis.prometheus m)
  else Metrics_analysis.print_top ?metric ~k ?slo m

let top_term =
  (* [string], not [file]: a missing path must be our clean exit-1 error,
     not cmdliner's exit-124 conversion failure *)
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"METRICS.jsonl") in
  let metric =
    Arg.(
      value
      & opt (some string) None
      & info [ "metric" ] ~docv:"NAME"
          ~doc:
            "Histogram whose per-window percentiles fill the p50/p99/p999 columns (default \
             rpc.latency, else the first histogram in the dump).")
  in
  let k =
    Arg.(value & opt int 5 & info [ "k" ] ~docv:"N" ~doc:"Status-note rows to print (default 5).")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "Emit the whole-run totals in Prometheus text exposition format instead of the \
             per-window dashboard.")
  in
  let slo =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"METRIC:THRESHOLD"
          ~doc:
            "Add a violation-rate column: the share of $(i,METRIC)'s observations per window \
             (and whole-run) above $(i,THRESHOLD), interpolated from the rendered quantiles \
             (e.g. rpc.latency:0.25).")
  in
  Term.(const top_cmd $ metric $ k $ prom $ slo $ path)

let top_cmd_info =
  Cmd.info "top"
    ~doc:
      "Render a metrics-plane dump (splay run --metrics-out=FILE): per-window global rates and \
       latency percentiles, cumulative summaries, and splayctl job-status rows."

(* {1 splay serve} *)

module Serve_h = Splay_serve.Harness
module Serve_load = Splay_serve.Load

let serve_cmd target nodes gateways serve_cost rates duration clients keys batching p2c admission
    all_on parts domains jobs seed =
  if rates = [] then begin
    Printf.eprintf "splay serve: --rates expects at least one offered rate\n";
    exit 1
  end;
  let scenario =
    {
      Serve_h.default with
      Serve_h.nodes;
      gateways;
      target;
      serve_cost;
      batching;
      p2c;
      admission;
      load = { Serve_load.default with Serve_load.clients; keys; duration };
    }
  in
  let scenario = if all_on then Serve_h.all_on scenario else scenario in
  let mode = if parts > 1 then Serve_h.Fab { parts; domains } else Serve_h.Seq in
  let step rate = Serve_h.run ~mode scenario ~seed ~rate in
  let results =
    (* a Fabric step owns the worker-domain pool, so the offered-load
       steps only fan out across --jobs in sequential mode *)
    match mode with
    | Serve_h.Seq -> Pool.map ~jobs step rates
    | Serve_h.Fab _ -> List.map step rates
  in
  Printf.printf "%d nodes, %d gateways, %d virtual clients, %s target%s%s\n" scenario.Serve_h.nodes
    (min scenario.Serve_h.gateways scenario.Serve_h.nodes)
    clients
    (match target with Serve_h.Dht -> "dht" | Serve_h.Web -> "web")
    (match mode with
    | Serve_h.Seq -> ""
    | Serve_h.Fab { parts; domains } -> Printf.sprintf ", %d partitions on %d domains" parts domains)
    (let on =
       List.filter_map
         (fun (name, v) -> if v then Some name else None)
         [
           ("batching", scenario.Serve_h.batching);
           ("p2c", scenario.Serve_h.p2c);
           ("admission", scenario.Serve_h.admission);
         ]
     in
     if on = [] then ", baseline" else ", " ^ String.concat "+" on);
  Printf.printf "  %9s %9s %9s %7s %7s %7s %9s %9s %9s %8s %8s\n" "rate" "offered" "ok" "miss"
    "shed" "failed" "p50" "p99" "p999" "sshed" "batched";
  List.iter
    (fun r ->
      Printf.printf "  %9.1f %9d %9d %7d %7d %7d %9.4f %9.4f %9.4f %8d %8d\n" r.Serve_h.r_rate
        r.Serve_h.offered r.Serve_h.ok r.Serve_h.misses r.Serve_h.shed r.Serve_h.failed
        r.Serve_h.p50 r.Serve_h.p99 r.Serve_h.p999 r.Serve_h.server_shed r.Serve_h.batched)
    results

let serve_target_conv = Arg.enum [ ("dht", Serve_h.Dht); ("web", Serve_h.Web) ]

let serve_term =
  let target =
    Arg.(
      value & opt serve_target_conv Serve_h.Dht
      & info [ "target" ] ~docv:"APP" ~doc:"Serving application: $(b,dht) or $(b,web).")
  in
  let nodes = Arg.(value & opt int 1_000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Overlay size.") in
  let gateways =
    Arg.(
      value & opt int 32
      & info [ "gateways" ] ~docv:"N" ~doc:"Nodes accepting client requests.")
  in
  let serve_cost =
    Arg.(
      value & opt float 0.002
      & info [ "serve-cost" ] ~docv:"S" ~doc:"Owner-side service time per request, seconds.")
  in
  let rates =
    Arg.(
      value
      & opt (list float) [ 500.0; 1000.0; 2000.0 ]
      & info [ "rates" ] ~docv:"R,R,..." ~doc:"Offered-load steps, requests/second.")
  in
  let duration =
    Arg.(value & opt float 30.0 & info [ "d"; "duration" ] ~docv:"S" ~doc:"Offered load per step, seconds.")
  in
  let clients =
    Arg.(
      value & opt int 100_000
      & info [ "clients" ] ~docv:"N" ~doc:"Virtual client population (O(1) words each).")
  in
  let keys = Arg.(value & opt int 1_000 & info [ "keys" ] ~docv:"N" ~doc:"Key-space size (Zipf popularity).") in
  let batching = Arg.(value & flag & info [ "batching" ] ~doc:"Coalesce same-key gets at the owner.") in
  let p2c = Arg.(value & flag & info [ "p2c" ] ~doc:"Power-of-two-choices replica selection.") in
  let admission =
    Arg.(value & flag & info [ "admission" ] ~doc:"Token-bucket + SLO-budget shedding at the owner.")
  in
  let all_on = Arg.(value & flag & info [ "all-on" ] ~doc:"Enable batching, p2c and admission together.") in
  let parts =
    Arg.(
      value & opt int 1
      & info [ "parts" ] ~docv:"N"
          ~doc:"Partition the deployment for the parallel engine ($(b,1) = sequential).")
  in
  let domains =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for a partitioned run.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Run offered-load steps on this many domains (sequential mode).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.") in
  Term.(
    const serve_cmd $ target $ nodes $ gateways $ serve_cost $ rates $ duration $ clients $ keys
    $ batching $ p2c $ admission $ all_on $ parts $ domains $ jobs $ seed)

let serve_cmd_info =
  Cmd.info "serve"
    ~doc:
      "Open-loop serving benchmark: drive a simulated overlay's DHT store or web cache with \
       Zipf-popularity traffic from compact virtual clients and print coordinated-omission-free \
       latency percentiles per offered-load step."

(* {1 splay live ...} *)

module Live = Splay_live

(* The forked daemon binary normally sits next to the CLI in _build. *)
let default_splayd () =
  let beside = Filename.concat (Filename.dirname Sys.executable_name) "splayd.exe" in
  if Sys.file_exists beside then beside else "splayd"

let live_deploy app nodes daemons lookups m descriptor_file out_dir duration deadline seed
    no_trace metrics diff_sim tolerance splayd_path kvs =
  Live.Live_apps.init ();
  let params =
    ("m", string_of_int m)
    :: ("lookups", string_of_int lookups)
    :: ("seed", string_of_int seed)
    :: List.map
         (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
           | None ->
               Printf.eprintf "splay live: --param expects KEY=VALUE, got %S\n" kv;
               exit 2)
         kvs
  in
  let desc =
    match descriptor_file with
    | Some path -> Descriptor.parse (read_file path)
    | None ->
        { Descriptor.default with Descriptor.bootstrap = Descriptor.All; nb_splayd = nodes }
  in
  let cfg =
    {
      Live.Ctl.default_cfg with
      Live.Ctl.c_app = app;
      c_params = params;
      c_daemons = daemons;
      c_desc = desc;
      c_out_dir = out_dir;
      c_splayd = (match splayd_path with Some p -> p | None -> default_splayd ());
      c_trace = not no_trace;
      c_metrics = metrics;
      c_duration = duration;
      c_deadline = deadline;
      c_seed = seed;
    }
  in
  Printf.printf "deploying %d x %s on %d live splayd processes (out: %s)...\n%!"
    desc.Descriptor.nb_splayd app daemons out_dir;
  let o = Live.Ctl.run cfg in
  let sel = o.Live.Ctl.r_select in
  Printf.printf "select: need %d instances; %d daemons alive, %d dead\n" sel.Live.Ctl.sel_need
    sel.Live.Ctl.sel_alive sel.Live.Ctl.sel_dead;
  Printf.printf "collected: %d log records, %d contract reports\n" o.Live.Ctl.r_log_records
    (List.length o.Live.Ctl.r_reports);
  (match o.Live.Ctl.r_trace_file with
  | Some p -> Printf.printf "trace: %s (analyze with `splay trace %s`)\n" p p
  | None -> ());
  (match o.Live.Ctl.r_metrics_file with
  | Some p -> Printf.printf "metrics: %s (render with `splay top %s`)\n" p p
  | None -> ());
  List.iter (fun f -> Printf.printf "FAILURE: %s\n" f) o.Live.Ctl.r_failures;
  let violations =
    if not diff_sim then []
    else begin
      Printf.printf "running simulated twin for the contract diff...\n%!";
      match Live.Contract.run_sim ~seed ~n:desc.Descriptor.nb_splayd ~app ~params () with
      | Error msg -> [ Printf.sprintf "sim twin failed: %s" msg ]
      | Ok sim_reports ->
          let sim = Live.Contract.summary_of_reports sim_reports in
          let live = Live.Contract.summary_of_reports o.Live.Ctl.r_reports in
          Live.Contract.diff ~tolerance ~sim ~live ()
    end
  in
  if diff_sim then begin
    List.iter (fun v -> Printf.printf "CONTRACT VIOLATION: %s\n" v) violations;
    Printf.printf "contract: %s\n"
      (if violations = [] then "OK (sim and live invariants match)"
       else Printf.sprintf "%d violations" (List.length violations))
  end;
  if (not o.Live.Ctl.r_ok) || violations <> [] then exit 1

let live_status dir =
  match Live.Ctl.status dir with
  | exception Sys_error msg ->
      Printf.eprintf "splay live status: %s\n" msg;
      exit 1
  | (ctl_pid, ctl_alive), daemons ->
      Printf.printf "controller: pid %d %s\n" ctl_pid (if ctl_alive then "alive" else "dead");
      List.iter
        (fun (host, pid, alive, log) ->
          Printf.printf "splayd %-3d pid %-7d %-5s log %s\n" host pid
            (if alive then "alive" else "dead")
            log)
        daemons;
      if ctl_alive || List.exists (fun (_, _, alive, _) -> alive) daemons then exit 0
      else exit 3

let live_kill dir =
  match Live.Ctl.kill dir with
  | exception Sys_error msg ->
      Printf.eprintf "splay live kill: %s\n" msg;
      exit 1
  | escalated ->
      if escalated > 0 then
        Printf.printf "killed (SIGKILL escalation for %d processes)\n" escalated
      else Printf.printf "killed\n"

let live_cmds =
  let dir_arg = Arg.(value & pos 0 string "_live" & info [] ~docv:"DIR") in
  let deploy =
    let app_arg =
      Arg.(value & opt string "chord" & info [ "app"; "a" ] ~docv:"APP" ~doc:"Registered live application.")
    in
    let nodes = Arg.(value & opt int 10 & info [ "nodes"; "n" ] ~doc:"Instances to deploy.") in
    let daemons =
      Arg.(value & opt int 10 & info [ "daemons" ] ~doc:"splayd processes to fork (instances are spread across them).")
    in
    let lookups = Arg.(value & opt int 20 & info [ "lookups" ] ~doc:"Lookups the driver instance issues.") in
    let m = Arg.(value & opt int 16 & info [ "m" ] ~doc:"Chord identifier bits.") in
    let descriptor =
      Arg.(
        value
        & opt (some file) None
        & info [ "descriptor" ]
            ~doc:"Job file with a BEGIN SPLAY RESOURCES RESERVATION header (overrides --nodes).")
    in
    let out_dir =
      Arg.(value & opt string "_live" & info [ "out-dir" ] ~docv:"DIR" ~doc:"Run directory (daemon logs, artifacts).")
    in
    let duration =
      Arg.(
        value & opt float 0.0
        & info [ "duration"; "d" ]
            ~doc:"Wall-clock seconds to run; 0 runs until the application reports done.")
    in
    let deadline =
      Arg.(value & opt float 120.0 & info [ "deadline" ] ~doc:"Hard wall-clock budget for the whole run.")
    in
    let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deployment seed.") in
    let no_trace =
      Arg.(value & flag & info [ "no-trace" ] ~doc:"Skip collecting the merged observability trace.")
    in
    let metrics =
      Arg.(value & flag & info [ "metrics" ] ~doc:"Collect the merged metrics-plane dump (splay top).")
    in
    let diff_sim =
      Arg.(
        value & flag
        & info [ "diff-sim" ]
            ~doc:"Run the same deployment on the simulated backend and diff the structural invariants.")
    in
    let tolerance =
      Arg.(value & opt float 0.5 & info [ "tolerance" ] ~doc:"Relative message-count tolerance for --diff-sim.")
    in
    let splayd =
      Arg.(
        value
        & opt (some string) None
        & info [ "splayd" ] ~docv:"PATH" ~doc:"splayd executable (default: next to this binary).")
    in
    let param =
      Arg.(
        value & opt_all string []
        & info [ "param" ] ~docv:"KEY=VALUE" ~doc:"Extra application parameter (repeatable).")
    in
    Cmd.v
      (Cmd.info "deploy" ~doc:"Fork real splayd daemons and run an application live over TCP.")
      Term.(
        const live_deploy $ app_arg $ nodes $ daemons $ lookups $ m $ descriptor $ out_dir $ duration
        $ deadline $ seed $ no_trace $ metrics $ diff_sim $ tolerance $ splayd $ param)
  in
  let status =
    Cmd.v
      (Cmd.info "status" ~doc:"Report controller and daemon liveness for a live run directory.")
      Term.(const live_status $ dir_arg)
  in
  let kill =
    Cmd.v
      (Cmd.info "kill" ~doc:"Terminate a live run's recorded processes (SIGTERM, then SIGKILL).")
      Term.(const live_kill $ dir_arg)
  in
  Cmd.group
    (Cmd.info "live"
       ~doc:
         "Live execution backend: deploy applications as real OS processes over real sockets, \
          inspect and kill running deployments.")
    [ deploy; status; kill ]

(* {1 splay trace ...} *)

let write_out out data =
  match out with
  | None -> print_string data
  | Some path ->
      let oc = open_out path in
      output_string oc data;
      close_out oc;
      Printf.eprintf "wrote %s\n" path

let trace_gen concurrent duration seed out =
  let rng = Rng.create seed in
  let t = Trace.synthetic_overnet ~concurrent ~duration rng in
  write_out out (Trace.to_string t ^ "\n")

let trace_info path =
  let t = Trace.of_string (read_file path) in
  Printf.printf "events:      %d\n" (List.length t);
  Printf.printf "duration:    %s\n" (Misc.duration_to_string (Trace.duration t));
  Printf.printf "initial:     %d nodes\n" (Trace.population t ~at:0.0);
  Printf.printf "peak churn:  %.1f%% of the population per minute\n"
    (100.0 *. Trace.churn_rate t ~bin:60.0);
  let series = Trace.population_series t ~bin:(Trace.duration t /. 10.0) in
  List.iter (fun (time, pop) -> Printf.printf "  t=%-8.0f %d nodes\n" time pop) series

let trace_speedup factor path out =
  let t = Trace.of_string (read_file path) in
  write_out out (Trace.to_string (Transform.speedup factor t) ^ "\n")

let trace_amplify factor path seed out =
  let t = Trace.of_string (read_file path) in
  let rng = Rng.create seed in
  write_out out (Trace.to_string (Transform.renumber (Transform.amplify rng factor t)) ^ "\n")

(* Offline analysis of an Obs JSONL dump (produced by `splay run --trace`
   or the bench harness's --obs-trace=FILE). *)
let trace_analyze critical root_name = function
  | None ->
      Printf.eprintf "splay trace: missing TRACE.jsonl argument (or subcommand; see --help)\n";
      exit 2
  | Some path ->
      let t =
        try Trace_analysis.load_file path
        with Sys_error m ->
          Printf.eprintf "splay trace: cannot read trace: %s\n" m;
          exit 1
      in
      if t.Trace_analysis.spans = [] then begin
        Printf.eprintf
          "splay trace: no complete spans in %s (empty or metrics-only dump? analyze those with \
           splay top)\n"
          path;
        exit 1
      end;
      let root =
        match root_name with
        | None -> None
        | Some nm -> (
            match Trace_analysis.slowest_root ~name:nm t with
            | Some _ as r -> r
            | None ->
                Printf.eprintf "splay trace: no span named %S in %s\n" nm path;
                exit 1)
      in
      if critical then Trace_analysis.print_critical_path ?root t
      else Trace_analysis.print_summary t

let out_arg = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")

let trace_cmds =
  let gen =
    Cmd.v (Cmd.info "gen" ~doc:"Generate an Overnet-like availability trace.")
      Term.(
        const trace_gen
        $ Arg.(value & opt int 600 & info [ "concurrent" ] ~doc:"Average online population.")
        $ Arg.(value & opt float 3000.0 & info [ "duration" ] ~doc:"Trace length (seconds).")
        $ Arg.(value & opt int 42 & info [ "seed" ])
        $ out_arg)
  in
  let info_c =
    Cmd.v (Cmd.info "info" ~doc:"Summarize a trace.")
      Term.(const trace_info $ Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"))
  in
  let speedup =
    Cmd.v (Cmd.info "speedup" ~doc:"Compress a trace in time.")
      Term.(
        const trace_speedup
        $ Arg.(required & pos 0 (some float) None & info [] ~docv:"FACTOR")
        $ Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE")
        $ out_arg)
  in
  let amplify =
    Cmd.v (Cmd.info "amplify" ~doc:"Scale a trace's churn volume, keeping its statistics.")
      Term.(
        const trace_amplify
        $ Arg.(required & pos 0 (some float) None & info [] ~docv:"FACTOR")
        $ Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE")
        $ Arg.(value & opt int 42 & info [ "seed" ])
        $ out_arg)
  in
  (* `splay trace FILE` analyzes an observability JSONL dump (the
     `run --trace FILE` output); the argv shim in [main] routes a FILE
     first argument here so the subcommand name can stay implicit. *)
  let analyze_term =
    (* [string], not [file]: a missing path must be our clean exit-1 usage
       error, not cmdliner's exit-124 conversion failure *)
    let file = Arg.(value & pos 0 (some string) None & info [] ~docv:"TRACE.jsonl") in
    let critical =
      Arg.(
        value & flag
        & info [ "critical-path" ]
            ~doc:"Print the per-hop latency breakdown along the critical path instead of the summary tables.")
    in
    let root =
      Arg.(
        value
        & opt (some string) None
        & info [ "root" ] ~docv:"NAME"
            ~doc:"Anchor the critical path at the slowest span named $(docv) (default: the slowest rpc.call root).")
    in
    Term.(const trace_analyze $ critical $ root $ file)
  in
  let analyze =
    Cmd.v
      (Cmd.info "analyze"
         ~doc:"Analyze an observability JSONL trace (summary tables, critical path).")
      analyze_term
  in
  Cmd.group ~default:analyze_term
    (Cmd.info "trace"
       ~doc:
         "Analyze an observability JSONL trace (causal DAG, critical path), or generate and \
          transform availability traces.")
    [ analyze; gen; info_c; speedup; amplify ]

let trace_subcommands = [ "analyze"; "gen"; "info"; "speedup"; "amplify" ]

let () =
  (* cmdliner command groups reject positionals in subcommand position, so
     `splay trace run.jsonl` needs the implicit `analyze` spliced in. *)
  let argv =
    let a = Sys.argv in
    if
      Array.length a >= 3
      && a.(1) = "trace"
      && (not (List.mem a.(2) trace_subcommands))
      && String.length a.(2) > 0
      && a.(2).[0] <> '-'
    then Array.concat [ [| a.(0); a.(1); "analyze" |]; Array.sub a 2 (Array.length a - 2) ]
    else a
  in
  (* Bare, empty or non-positive --jobs/--domains values exit 2 with a
     one-line error instead of cmdliner's conversion dump — silently
     falling back to a default would run a different schedule than the
     caller asked for (same strictness as the bench harness's output
     flags). *)
  (let bad ctx got =
     Printf.eprintf "splay: %s expects a positive integer, got %s\n" ctx got;
     exit 2
   in
   let check ctx = function
     | None -> bad ctx "nothing"
     | Some s -> (
         match int_of_string_opt s with
         | Some n when n >= 1 -> ()
         | _ -> bad ctx (Printf.sprintf "%S" s))
   in
   let n = Array.length argv in
   Array.iteri
     (fun i a ->
       match a with
       | "--jobs" | "--domains" -> check a (if i + 1 < n then Some argv.(i + 1) else None)
       | _ ->
           List.iter
             (fun pfx ->
               let lp = String.length pfx in
               if String.length a >= lp && String.sub a 0 lp = pfx then
                 check (String.sub a 0 (lp - 1)) (Some (String.sub a lp (String.length a - lp))))
             [ "--jobs="; "--domains=" ])
     argv);
  let root =
    Cmd.group
      (Cmd.info "splay" ~version:"1.0" ~doc:"SPLAY for OCaml — deploy and evaluate distributed systems.")
      [
        Cmd.v run_cmd_info run_term;
        Cmd.v check_cmd_info check_term;
        Cmd.v profile_cmd_info profile_term;
        Cmd.v top_cmd_info top_term;
        Cmd.v serve_cmd_info serve_term;
        live_cmds;
        trace_cmds;
      ]
  in
  exit (Cmd.eval ~argv root)
