(* Tests for the open-loop serving stack: the virtual-client load
   generator (partition splitting, O(1) words per idle client), the
   one-step harness (accounting identities, drain, stale-freshness), the
   serving optimizations (batching / p2c / admission actually move the
   needle past the knee), and the determinism pins the acceptance
   criteria require: byte-identical result lines across Pool --jobs and
   across parallel-engine worker-domain counts. *)

module Dpool = Splay_sim.Dpool
module Pool = Splay_sim.Pool
module Load = Splay_serve.Load
module Harness = Splay_serve.Harness

(* {2 Load.client_span} *)

let test_client_span () =
  (* spans partition [0, clients) exactly: contiguous, disjoint, total *)
  List.iter
    (fun (clients, parts) ->
      let total = ref 0 and cursor = ref 0 in
      for p = 0 to parts - 1 do
        let lo, len = Load.client_span ~clients ~part:p ~parts in
        Alcotest.(check int) "contiguous" !cursor lo;
        Alcotest.(check bool) "non-negative" true (len >= 0);
        cursor := lo + len;
        total := !total + len
      done;
      Alcotest.(check int) "covers all clients" clients !total)
    [ (10, 3); (1_000_000, 7); (5, 8); (0, 4); (16, 4) ]

(* {2 A small scenario the remaining tests share} *)

let small =
  {
    Harness.default with
    Harness.nodes = 60;
    gateways = 12;
    serve_cost = 0.004;
    load =
      {
        Load.default with
        Load.clients = 5_000;
        keys = 200;
        duration = 20.0;
        inflight = 8;
      };
  }

(* {2 Accounting identities and freshness} *)

let test_harness_accounting () =
  let r = Harness.run small ~seed:7 ~rate:400.0 in
  Alcotest.(check bool) "arrivals happened" true (r.Harness.offered > 1_000);
  Alcotest.(check int) "every arrival accounted"
    r.Harness.offered
    (r.Harness.ok + r.Harness.misses + r.Harness.shed + r.Harness.failed);
  Alcotest.(check int) "no failures in a healthy ring" 0 r.Harness.failed;
  Alcotest.(check bool) "latencies positive" true (r.Harness.p50 > 0.0);
  Alcotest.(check bool) "quantiles ordered" true
    (r.Harness.p50 <= r.Harness.p99 && r.Harness.p99 <= r.Harness.p999);
  Alcotest.(check bool) "gets mostly hit the preloaded keys" true
    (r.Harness.ok > r.Harness.offered / 2);
  Alcotest.(check int) "no stale serves" 0 r.Harness.stale

let test_harness_web_target () =
  let web = { small with Harness.target = Harness.Web } in
  let off = Harness.run web ~seed:9 ~rate:300.0 in
  let on = Harness.run { web with Harness.batching = true } ~seed:9 ~rate:300.0 in
  List.iter
    (fun r ->
      Alcotest.(check bool) "arrivals happened" true (r.Harness.offered > 500);
      Alcotest.(check int) "every arrival accounted"
        r.Harness.offered
        (r.Harness.ok + r.Harness.misses + r.Harness.shed + r.Harness.failed);
      Alcotest.(check int) "no stale-beyond-TTL serves" 0 r.Harness.stale;
      Alcotest.(check bool) "origin reached" true (r.Harness.origin > 0))
    [ off; on ];
  (* same arrival schedule: singleflight absorbs the concurrent misses on
     a hot url into its leader's fetch instead of repeating it *)
  Alcotest.(check bool)
    (Printf.sprintf "coalescing saves origin fetches (%d vs %d)" on.Harness.origin
       off.Harness.origin)
    true
    (on.Harness.origin < off.Harness.origin);
  Alcotest.(check int) "without coalescing every miss fetches" 0 off.Harness.batched;
  Alcotest.(check bool) "coalesced waiters counted" true (on.Harness.batched > 0)

(* {2 Bounded generator footprint: O(1) words per idle client} *)

let test_client_words_bounded () =
  let s =
    {
      small with
      Harness.load =
        { small.Harness.load with Load.clients = 200_000; duration = 2.0 };
    }
  in
  let r = Harness.run s ~seed:11 ~rate:200.0 in
  Alcotest.(check bool)
    (Printf.sprintf "words per idle client bounded (got %.2f)" r.Harness.client_words)
    true
    (r.Harness.client_words < 8.0)

(* {2 The optimizations move the needle} *)

(* Past the knee: 60 nodes at 4ms/service sustain ~15k req/s ring-wide,
   but Zipf s=1.0 over 200 keys concentrates ~17% of arrivals on the
   hottest key, so 3k req/s saturates its primary owner. The overload
   scenario widens the per-gateway in-flight pool so the generator stays
   open-loop and the owners — not the client pool — are the bottleneck. *)
let overload_rate = 3_000.0

let over =
  { small with Harness.load = { small.Harness.load with Load.inflight = 64 } }

let test_batching_coalesces () =
  let r0 = Harness.run over ~seed:21 ~rate:overload_rate in
  let rb = Harness.run { over with Harness.batching = true } ~seed:21 ~rate:overload_rate in
  Alcotest.(check int) "baseline never batches" 0 r0.Harness.batched;
  Alcotest.(check bool) "batching absorbs hot-key waiters" true (rb.Harness.batched > 0);
  Alcotest.(check bool)
    (Printf.sprintf "batching lowers p99 past the knee (%.3f vs %.3f)" rb.Harness.p99
       r0.Harness.p99)
    true
    (rb.Harness.p99 < r0.Harness.p99)

let test_admission_sheds_and_bounds_tail () =
  let r0 = Harness.run over ~seed:23 ~rate:overload_rate in
  let ra = Harness.run { over with Harness.admission = true } ~seed:23 ~rate:overload_rate in
  Alcotest.(check int) "baseline never sheds" 0 r0.Harness.server_shed;
  Alcotest.(check bool) "admission sheds under overload" true (ra.Harness.server_shed > 0);
  Alcotest.(check int) "sheds are not failures" 0 ra.Harness.failed;
  Alcotest.(check bool)
    (Printf.sprintf "admission bounds the tail (%.3f vs %.3f)" ra.Harness.p99 r0.Harness.p99)
    true
    (ra.Harness.p99 < r0.Harness.p99)

let test_all_on_beats_baseline () =
  let r0 = Harness.run over ~seed:25 ~rate:overload_rate in
  let ra = Harness.run (Harness.all_on over) ~seed:25 ~rate:overload_rate in
  Alcotest.(check bool)
    (Printf.sprintf "all-on beats baseline p99 past the knee (%.3f vs %.3f)" ra.Harness.p99
       r0.Harness.p99)
    true
    (ra.Harness.p99 < r0.Harness.p99)

let test_p2c_runs_clean () =
  (* p2c is a read-path routing change: correctness must be unaffected *)
  let r0 = Harness.run small ~seed:27 ~rate:400.0 in
  let rp = Harness.run { small with Harness.p2c = true } ~seed:27 ~rate:400.0 in
  Alcotest.(check int) "no failures with p2c" 0 rp.Harness.failed;
  Alcotest.(check int) "same arrivals (same schedule)" r0.Harness.offered rp.Harness.offered;
  Alcotest.(check bool) "hit rate preserved" true
    (abs (rp.Harness.ok - r0.Harness.ok) < r0.Harness.offered / 20)

(* {2 Determinism pins} *)

(* Same (seed, scenario, rate) → the same bytes, run after run. *)
let test_seq_repeatable () =
  let a = Harness.to_line (Harness.run small ~seed:31 ~rate:400.0) in
  let b = Harness.to_line (Harness.run small ~seed:31 ~rate:400.0) in
  Alcotest.(check string) "sequential rerun byte-identical" a b

(* Pool fan-out over offered-load steps: --jobs must not change a byte.
   set_cap forces real worker domains even on a single-core CI box. *)
let test_pool_jobs_identical () =
  let rates = [ 200.0; 400.0; 800.0 ] in
  let step rate = Harness.to_line (Harness.run small ~seed:33 ~rate) in
  let seq = List.map step rates in
  Dpool.set_cap (Some 4);
  Fun.protect
    ~finally:(fun () -> Dpool.set_cap None)
    (fun () ->
      List.iter
        (fun jobs ->
          let par = Pool.map ~jobs step rates in
          List.iter2
            (Alcotest.(check string) (Printf.sprintf "jobs=%d byte-identical" jobs))
            seq par)
        [ 2; 4 ])

(* Fabric (parallel single-run engine): the same deployment over 4
   partitions must produce the same bytes whether the windows execute on
   1 or 4 worker domains. *)
let test_fabric_domains_identical () =
  let mode = Harness.Fab { parts = 4; domains = 4 } in
  let run () = Harness.run ~mode small ~seed:35 ~rate:400.0 in
  Dpool.set_cap (Some 1);
  let solo = Fun.protect ~finally:(fun () -> Dpool.set_cap None) run in
  Dpool.set_cap (Some 4);
  let wide = Fun.protect ~finally:(fun () -> Dpool.set_cap None) run in
  Alcotest.(check int) "solo collapses to one worker" 1 solo.Harness.workers;
  Alcotest.(check int) "wide uses four workers" 4 wide.Harness.workers;
  Alcotest.(check bool) "windowed execution" true (solo.Harness.windows > 0);
  Alcotest.(check string) "domains byte-identical"
    (Harness.to_line solo) (Harness.to_line wide);
  Alcotest.(check bool) "fabric run did real work" true (solo.Harness.offered > 500);
  Alcotest.(check int) "fabric accounting" solo.Harness.offered
    (solo.Harness.ok + solo.Harness.misses + solo.Harness.shed + solo.Harness.failed)

let () =
  Alcotest.run "serve"
    [
      ( "load",
        [
          Alcotest.test_case "client span" `Quick test_client_span;
          Alcotest.test_case "client words bounded" `Quick test_client_words_bounded;
        ] );
      ( "harness",
        [
          Alcotest.test_case "accounting" `Quick test_harness_accounting;
          Alcotest.test_case "web target" `Quick test_harness_web_target;
        ] );
      ( "optimizations",
        [
          Alcotest.test_case "batching" `Quick test_batching_coalesces;
          Alcotest.test_case "admission" `Quick test_admission_sheds_and_bounds_tail;
          Alcotest.test_case "all-on" `Quick test_all_on_beats_baseline;
          Alcotest.test_case "p2c clean" `Quick test_p2c_runs_clean;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seq repeatable" `Quick test_seq_repeatable;
          Alcotest.test_case "pool jobs" `Quick test_pool_jobs_identical;
          Alcotest.test_case "fabric domains" `Quick test_fabric_domains_identical;
        ] );
    ]
