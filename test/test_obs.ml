(* Tests for the observability layer: deterministic traces under a fixed
   seed, the zero-cost disabled mode, outcome-tagged RPC spans, the
   Engine.run statistics record, Rpc.options retries, and the diagnosable
   selection report. *)

open Splay_sim
open Splay_net
open Splay_runtime
open Splay_ctl
module Apps = Splay_apps
module Obs = Splay_obs.Obs
module Ta = Splay_obs.Trace_analysis

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every test leaves the global switch off so the rest of the suite runs
   uninstrumented. *)
let with_obs f =
  Obs.reset ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

(* {2 Fixture: a small Chord deployment through the controller} *)

let chord_config =
  { Apps.Chord.default_config with m = 16; stabilize_interval = 2.0; join_delay_per_position = 0.5 }

let run_chord_deployment ~seed =
  let eng = Engine.create ~seed () in
  let tb0 = Testbed.cluster ~n:5 (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init 5 Fun.id) in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown daemons;
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () ->
             let dep =
               Controller.deploy ctl ~name:"chord"
                 ~main:(Apps.Chord.app ~config:chord_config ~register:(fun _ -> ()))
                 (Descriptor.make ~bootstrap:(Descriptor.Head 1) 8)
             in
             Env.sleep 40.0;
             Controller.undeploy dep)));
  let stats = Engine.run ~until:10_000.0 eng in
  (match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e));
  stats

(* {2 Determinism} *)

let test_trace_deterministic () =
  let capture () =
    with_obs (fun () ->
        ignore (run_chord_deployment ~seed:7);
        (Obs.trace_jsonl (), Obs.metrics_jsonl ()))
  in
  let trace1, metrics1 = capture () in
  let trace2, metrics2 = capture () in
  Alcotest.(check bool) "trace non-empty" true (String.length trace1 > 0);
  Alcotest.(check string) "same seed, identical JSONL trace" trace1 trace2;
  Alcotest.(check string) "same seed, identical metrics" metrics1 metrics2;
  (* the trace spans every layer *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "trace mentions %s" needle) true
        (contains trace1 needle))
    [
      "\"name\":\"engine.spawn\"";
      "\"name\":\"rpc.call\"";
      "\"name\":\"rpc.serve\"";
      "\"name\":\"ctl.deploy\"";
      "\"name\":\"ctl.register_round\"";
      "\"name\":\"splayd.register\"";
    ];
  Alcotest.(check bool) "metrics mention engine.events" true
    (contains metrics1 "\"metric\":\"engine.events\"");
  (* causal linkage survives the controller deployment: every handler span
     has a cross-node parent (the caller's envelope context) *)
  let parsed = Ta.load trace1 in
  let serves = List.filter (fun sp -> sp.Ta.name = "rpc.serve") parsed.Ta.spans in
  Alcotest.(check bool) "deployment produced serve spans" true (serves <> []);
  List.iter
    (fun sp ->
      if sp.Ta.pid = 0 then
        Alcotest.failf "rpc.serve sid %d has no parent (pid 0)" sp.Ta.sid)
    serves

(* {2 Golden-trace regression} *)

(* The byte-exact trace and metrics of the seed-7 deployment, pinned as
   files: any unintended change to event ordering, RNG stream consumption
   or span/metric emission — e.g. a perturbation hook that is not strictly
   zero-cost when disabled — shows up here as a diff against the bytes the
   pre-existing code produced. Regenerate only after a deliberate behavior
   change:

     SPLAY_GOLDEN_DIR=$PWD/test/golden dune exec test/test_obs.exe -- test golden
*)
(* dune runtest runs with cwd = the test directory (where the (deps ...)
   copies land); `dune exec test/test_obs.exe` runs from the project root. *)
let golden_file name = if Sys.file_exists "golden" then "golden/" ^ name else "test/golden/" ^ name
let golden_trace () = golden_file "chord_seed7.trace.jsonl"
let golden_metrics () = golden_file "chord_seed7.metrics.jsonl"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_golden_trace () =
  let trace, metrics =
    with_obs (fun () ->
        ignore (run_chord_deployment ~seed:7);
        (Obs.trace_jsonl (), Obs.metrics_jsonl ()))
  in
  match Sys.getenv_opt "SPLAY_GOLDEN_DIR" with
  | Some dir ->
      write_file (Filename.concat dir "chord_seed7.trace.jsonl") trace;
      write_file (Filename.concat dir "chord_seed7.metrics.jsonl") metrics;
      Printf.printf "regenerated golden files under %s\n" dir
  | None ->
      Alcotest.(check bool) "golden trace is byte-identical" true
        (read_file (golden_trace ()) = trace);
      Alcotest.(check bool) "golden metrics are byte-identical" true
        (read_file (golden_metrics ()) = metrics)

(* The untraced fast path (recycled timer records, ring scheduling, no
   span emission) and the traced path share engine state. Running a whole
   deployment untraced first, then the traced golden run in the same
   process, pins that the fast path leaves no residue — warm caches,
   registry growth, DLS state — that could perturb a later traced run. *)
let test_golden_after_untraced_run () =
  ignore (run_chord_deployment ~seed:7);
  let trace, metrics =
    with_obs (fun () ->
        ignore (run_chord_deployment ~seed:7);
        (Obs.trace_jsonl (), Obs.metrics_jsonl ()))
  in
  if Sys.getenv_opt "SPLAY_GOLDEN_DIR" = None then begin
    Alcotest.(check bool) "golden trace identical after untraced warm-up" true
      (read_file (golden_trace ()) = trace);
    Alcotest.(check bool) "golden metrics identical after untraced warm-up" true
      (read_file (golden_metrics ()) = metrics)
  end

(* {2 Metrics plane: windowed rollups} *)

module Ma = Splay_obs.Metrics_analysis

(* Arm only the metrics plane (tracing stays off unless [trace]), with a
   clean rollup ring, restoring the all-off default afterwards. *)
let with_metrics ?(trace = false) f =
  Obs.reset ();
  Obs.Rollup.clear ();
  Obs.enabled := trace;
  Obs.metrics_enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Obs.enabled := false;
      Obs.metrics_enabled := false;
      Obs.Rollup.clear ();
      Obs.reset ())
    f

let test_rollup_quantile_accuracy () =
  with_metrics (fun () ->
      let h = Obs.histogram "test.ru.acc" in
      (* uniform 0.001 .. 10.0: known quantiles across 14 octaves *)
      for i = 1 to 10_000 do
        Obs.observe h (Float.of_int i /. 1000.0)
      done;
      Alcotest.(check int) "every sample in the cumulative table" 10_000 (Obs.Rollup.count h);
      let check_q q expect =
        let v = Obs.Rollup.quantile h q in
        Alcotest.(check bool)
          (Printf.sprintf "p%g = %.4f within 7%% of %.4f" (q *. 100.0) v expect)
          true
          (Float.abs (v -. expect) <= 0.07 *. expect)
      in
      check_q 0.5 5.0;
      check_q 0.9 9.0;
      check_q 0.99 9.9;
      check_q 0.999 9.99;
      check_q 0.0 0.001;
      (* the top bucket's midpoint overshoots the observed range, so the
         exact max clamps it: q1 is exact *)
      Alcotest.(check (float 1e-9)) "q1 is the exact max" 10.0 (Obs.Rollup.quantile h 1.0))

let test_rollup_zero_bucket () =
  with_metrics (fun () ->
      let h = Obs.histogram "test.ru.zero" in
      (* zero and negative samples (same-instant waits) share bucket 0 and
         must not corrupt the log-bucket table *)
      Obs.observe h 0.0;
      Obs.observe h (-3.0);
      Obs.observe h 0.0;
      Alcotest.(check int) "counted" 3 (Obs.Rollup.count h);
      (* bucket 0's representative is 0.0; the exact min survives in the
         rendered row's "min" field, not in the quantiles *)
      Alcotest.(check (float 1e-9)) "bucket-0 median" 0.0 (Obs.Rollup.quantile h 0.5);
      Alcotest.(check (float 1e-9)) "q1 stays in the zero bucket" 0.0 (Obs.Rollup.quantile h 1.0);
      let dump = Obs.metrics_plane_jsonl () in
      Alcotest.(check bool) "exact min rendered on the cumulative row" true
        (contains dump "\"min\":-3"))

let test_rollup_capture_merge () =
  with_metrics (fun () ->
      let h = Obs.histogram "test.ru.merge" in
      (* two captured trials observing disjoint halves of one distribution:
         the absorbed cumulative table must behave like the union *)
      let (), s1 =
        Obs.capture ~ids_base:(1 lsl 24) (fun () ->
            for i = 1 to 1000 do
              Obs.observe h (Float.of_int i /. 1000.0)
            done)
      in
      let (), s2 =
        Obs.capture ~ids_base:(2 lsl 24) (fun () ->
            for i = 1001 to 2000 do
              Obs.observe h (Float.of_int i /. 1000.0)
            done)
      in
      Alcotest.(check int) "nothing recorded here before absorb" 0 (Obs.Rollup.count h);
      Obs.absorb s1;
      Obs.absorb s2;
      Alcotest.(check int) "merged cumulative count" 2000 (Obs.Rollup.count h);
      let v = Obs.Rollup.quantile h 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "merged median %.4f within 7%% of 1.0" v)
        true
        (Float.abs (v -. 1.0) <= 0.07))

let test_rollup_window_rotation () =
  with_metrics (fun () ->
      (* drive the ring off a fake clock; any test needing the engine's
         clock re-installs it via Engine.create *)
      let t = ref 1.0 in
      Obs.set_clock (fun () -> !t);
      let c = Obs.counter "test.ru.ticks" in
      let h = Obs.histogram "test.ru.lat" in
      Obs.incr c;
      Obs.observe h 0.010;
      t := 25.0;
      Obs.incr c;
      t := 47.0;
      (* w4 displaces w0 from the 4-slot ring: w0 is rendered, not lost *)
      Obs.observe h 0.020;
      let rows = Obs.Rollup.rows () in
      List.iter
        (fun w ->
          Alcotest.(check bool) (Printf.sprintf "window %d rendered" w) true
            (contains rows (Printf.sprintf "\"w\":%d" w)))
        [ 0; 2; 4 ];
      Alcotest.(check bool) "no phantom window" false (contains rows "\"w\":1");
      (* a clock reading behind the newest window clamps into it instead of
         corrupting an already-rendered one *)
      t := 3.0;
      Obs.incr c;
      Alcotest.(check bool) "w0 not re-opened" false
        (contains (Obs.Rollup.rows ()) "\"w\":0,\"n\":2");
      let dump = Obs.metrics_plane_jsonl () in
      Alcotest.(check bool) "schema header" true
        (contains dump "\"schema\":\"splay-metrics/1\"");
      Alcotest.(check bool) "cumulative rows carry w:-1" true (contains dump "\"w\":-1");
      (* the three counter increments all survived the rotation *)
      let m = Ma.load dump in
      let total =
        List.fold_left
          (fun acc w ->
            List.fold_left
              (fun acc r -> acc + Option.value ~default:0 (Ma.int_field r "n"))
              acc
              (Ma.rows_of m ~w "test.ru.ticks"))
          0 m.Ma.windows
      in
      Alcotest.(check int) "windowed counts add up across rotation" 3 total;
      Obs.set_clock (fun () -> 0.0))

(* {2 Metrics plane: golden dump and dashboard} *)

(* The seed-7 chord deployment again, this time through the metrics plane
   only: the JSONL dump and the [splay top] dashboard rendered from it are
   pinned byte-for-byte, same regeneration story as the golden trace. *)
let golden_metricsplane () = golden_file "chord_seed7.metricsplane.jsonl"
let golden_top () = golden_file "chord_seed7.top.txt"

let test_golden_metrics_plane () =
  let dump =
    with_metrics (fun () ->
        ignore (run_chord_deployment ~seed:7);
        Obs.metrics_plane_jsonl ())
  in
  let top = Ma.render (Ma.load dump) in
  match Sys.getenv_opt "SPLAY_GOLDEN_DIR" with
  | Some dir ->
      write_file (Filename.concat dir "chord_seed7.metricsplane.jsonl") dump;
      write_file (Filename.concat dir "chord_seed7.top.txt") top;
      Printf.printf "regenerated metrics-plane golden files under %s\n" dir
  | None ->
      Alcotest.(check bool) "dump mentions rpc.latency" true (contains dump "rpc.latency");
      Alcotest.(check bool) "golden metrics-plane dump is byte-identical" true
        (read_file (golden_metricsplane ()) = dump);
      Alcotest.(check bool) "golden splay-top render is byte-identical" true
        (read_file (golden_top ()) = top)

(* The --slo column: violation rate reconstructed from rendered quantiles
   by piecewise-linear CDF interpolation — exact at the recorded points,
   linear between them, saturating outside [min, max]. *)
let test_slo_violation_rate () =
  let dump =
    "{\"schema\":\"splay-metrics/1\",\"window\":10}\n"
    ^ "{\"m\":\"lat\",\"kind\":\"hist\",\"w\":0,\"n\":100,\"sum\":100.0,\"min\":0.0,\"max\":2.0,\"p50\":1.0,\"p90\":1.5,\"p99\":1.8,\"p999\":1.9}\n"
  in
  let m = Ma.load dump in
  let h = Ma.hist_agg (Ma.rows_of m ~w:0 "lat") in
  let vr thr = Ma.violation_rate h ~threshold:thr in
  Alcotest.(check (float 1e-9)) "below min: everything violates" 1.0 (vr (-1.0));
  Alcotest.(check (float 1e-9)) "at max: nothing violates" 0.0 (vr 2.0);
  Alcotest.(check (float 1e-9)) "exact at p50" 0.5 (vr 1.0);
  Alcotest.(check (float 1e-9)) "interpolated min..p50" 0.75 (vr 0.5);
  Alcotest.(check (float 1e-9)) "interpolated p50..p90" 0.3 (vr 1.25);
  Alcotest.(check bool) "empty histogram renders nan" true
    (Float.is_nan (Ma.violation_rate (Ma.hist_agg []) ~threshold:1.0));
  let top = Ma.render ~slo:("lat", 1.0) m in
  Alcotest.(check bool) "slo column rendered" true (contains top "slo-viol");
  Alcotest.(check bool) "window violation rendered" true (contains top "50.00%")

let test_metrics_only_no_spans () =
  let dump, spans, trace =
    with_metrics (fun () ->
        ignore (run_chord_deployment ~seed:7);
        (Obs.metrics_plane_jsonl (), Obs.span_count (), Obs.trace_jsonl ()))
  in
  Alcotest.(check int) "no spans started" 0 spans;
  Alcotest.(check string) "trace empty" "" trace;
  Alcotest.(check bool) "histogram rows recorded" true (contains dump "\"kind\":\"hist\"")

(* {2 Trace cap} *)

(* Capping the trace must drop the *suffix* only: the stored prefix stays
   byte-identical to the uncapped golden trace (ids and context advance as
   if nothing were dropped), and every refused record is counted. *)
let test_trace_cap () =
  let cap = 100 in
  let capped, dropped =
    Fun.protect
      ~finally:(fun () -> Obs.set_trace_cap 0)
      (fun () ->
        Obs.set_trace_cap cap;
        with_obs (fun () ->
            ignore (run_chord_deployment ~seed:7);
            (Obs.trace_jsonl (), Obs.trace_dropped ())))
  in
  if Sys.getenv_opt "SPLAY_GOLDEN_DIR" = None then begin
    let golden = read_file (golden_trace ()) in
    let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' golden) in
    let total = List.length lines in
    Alcotest.(check bool) (Printf.sprintf "cap %d below the %d-record trace" cap total) true
      (total > cap);
    let prefix = String.concat "\n" (List.filteri (fun i _ -> i < cap) lines) ^ "\n" in
    Alcotest.(check string) "stored prefix byte-identical to the uncapped trace" prefix capped;
    Alcotest.(check int) "every record past the cap counted" (total - cap) dropped
  end

(* {2 Timestamp formatter} *)

(* The trace writer renders the clock by fixed-point integer emission;
   the contract is byte-equality with [Printf.sprintf "%.6f"]. Exercise
   the exact-tie cases (odd multiples of 2^-7 scale to ....5 microseconds,
   where round-half-even bites), the fallback ranges, and a seeded random
   sweep across the magnitudes a simulated clock visits. *)
let test_time_format_matches_printf () =
  let check v =
    let b = Buffer.create 32 in
    Obs.add_time_value b v;
    Alcotest.(check string)
      (Printf.sprintf "format of %h" v)
      (Printf.sprintf "%.6f" v) (Buffer.contents b)
  in
  check 0.0;
  List.iter check [ 1e-6; 0.1; 1.0; 40.0; 10_000.0; 123_456.789_012; 1e11 ];
  (* exact ties for round-half-even *)
  for i = 0 to 100 do
    check (Float.of_int ((2 * i) + 1) *. 0.0078125)
  done;
  (* fallback paths: negative zero, negative, tiny, huge, non-finite *)
  List.iter check [ -0.0; -1.5; 1e-7; 9e-7; 1e12; 5e13; infinity; neg_infinity ];
  (* powers of two sweep the full shift range of the fast path *)
  let p = ref 1e-6 in
  while !p < 1e12 do
    check !p;
    check (Float.pred !p);
    check (Float.succ !p);
    check (!p *. 1.5);
    p := !p *. 2.0
  done;
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 20_000 do
    let mag = 10.0 ** Float.of_int (Random.State.int st 18 - 6) in
    check (Random.State.float st mag)
  done

(* {2 Cross-node causality} *)

(* A 3-hop forwarding chain A -> B -> C -> D: each serve span must be a
   child of the caller's span on the previous node, and the whole chain
   must share one trace rooted at A's rpc.call. *)
let test_cross_node_linkage () =
  with_obs (fun () ->
      let eng = Engine.create ~seed:13 () in
      let tb = Testbed.cluster ~n:4 (Engine.rng eng) in
      let net = Net.create eng tb in
      let a = Env.create net ~me:(Addr.make 0 2000) in
      let b = Env.create net ~me:(Addr.make 1 2000) in
      let c = Env.create net ~me:(Addr.make 2 2000) in
      let d = Env.create net ~me:(Addr.make 3 2000) in
      let forward env next =
        Rpc.server env
          [
            ( "hop",
              fun args ->
                match next with
                | None -> Codec.Int 0
                | Some dst -> (
                    match Rpc.a_call env dst "hop" args with
                    | Ok v -> v
                    | Error e -> Alcotest.failf "forward failed: %s" (Rpc.error_to_string e)) );
          ]
      in
      forward b (Some c.Env.me);
      forward c (Some d.Env.me);
      forward d None;
      let ok = ref false in
      ignore
        (Env.thread a (fun () ->
             match Rpc.a_call a b.Env.me "hop" [] with
             | Ok _ -> ok := true
             | Error e -> Alcotest.failf "chain failed: %s" (Rpc.error_to_string e)));
      ignore (Engine.run eng);
      Alcotest.(check bool) "chain completed" true !ok;
      let t = Ta.load (Obs.trace_jsonl ()) in
      let serves = List.filter (fun sp -> sp.Ta.name = "rpc.serve") t.Ta.spans in
      Alcotest.(check int) "one serve span per hop" 3 (List.length serves);
      List.iter
        (fun sp ->
          Alcotest.(check bool)
            (Printf.sprintf "serve sid %d has a cross-node parent" sp.Ta.sid)
            true (sp.Ta.pid <> 0))
        serves;
      (match serves with
      | first :: rest ->
          List.iter
            (fun sp -> Alcotest.(check int) "hops share one causal trace" first.Ta.tid sp.Ta.tid)
            rest
      | [] -> ());
      let rec root_of sp =
        match Hashtbl.find_opt t.Ta.by_sid sp.Ta.pid with
        | Some parent -> root_of parent
        | None -> sp
      in
      List.iter
        (fun sp ->
          let r = root_of sp in
          Alcotest.(check string) "ancestry reaches the client's call" "rpc.call" r.Ta.name;
          Alcotest.(check int) "that call is a root" 0 r.Ta.pid)
        serves;
      (* the causal chain is the critical path of the client's call *)
      match Ta.slowest_root t with
      | None -> Alcotest.fail "no root span"
      | Some root ->
          let path = List.map (fun sp -> sp.Ta.name) (Ta.critical_path root) in
          Alcotest.(check (list string)) "alternating call/serve chain"
            [ "rpc.call"; "rpc.serve"; "rpc.call"; "rpc.serve"; "rpc.call"; "rpc.serve" ]
            path)

(* {2 Disabled mode} *)

let test_disabled_records_nothing () =
  Obs.reset ();
  Obs.enabled := false;
  let c = Obs.counter "test.disabled_counter" in
  let h = Obs.histogram "test.disabled_hist" in
  let g = Obs.gauge "test.disabled_gauge" in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let s = Obs.span "x" in
    Obs.finish s;
    Obs.incr c;
    Obs.observe h 1.0;
    Obs.gauge_set g 2.0
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "no per-site allocation when disabled (%.0f words)" allocated)
    true (allocated < 1_000.0);
  Alcotest.(check int) "no spans started" 0 (Obs.span_count ());
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.histogram_count h);
  Alcotest.(check string) "trace empty" "" (Obs.trace_jsonl ());
  Alcotest.(check string) "metrics empty" "" (Obs.metrics_jsonl ())

(* {2 RPC spans and options} *)

let two_host_rpc ~seed f =
  let eng = Engine.create ~seed () in
  let tb = Testbed.cluster ~n:2 (Engine.rng eng) in
  let net = Net.create eng tb in
  let server = Env.create net ~me:(Addr.make 0 2000) in
  let client = Env.create net ~me:(Addr.make 1 2000) in
  Rpc.server server [ ("echo", fun args -> Codec.List args) ];
  f eng net server client;
  ignore (Engine.run eng)

let test_timeout_span () =
  with_obs (fun () ->
      let settled = ref false in
      two_host_rpc ~seed:3 (fun _eng net server client ->
          Net.set_host_up net 0 false;
          ignore
            (Env.thread client (fun () ->
                 (match Rpc.a_call client server.Env.me ~timeout:2.0 "echo" [] with
                 | Error Rpc.Timeout -> ()
                 | _ -> Alcotest.fail "expected Timeout");
                 settled := true)));
      Alcotest.(check bool) "call settled" true !settled;
      let trace = Obs.trace_jsonl () in
      Alcotest.(check bool) "rpc.call span present" true (contains trace "\"name\":\"rpc.call\"");
      Alcotest.(check bool) "span outcome is timeout" true
        (contains trace "\"outcome\":\"timeout\"");
      Alcotest.(check int) "timeout counter" 1
        (Obs.counter_value (Obs.counter "rpc.timeouts")))

let test_retries () =
  with_obs (fun () ->
      two_host_rpc ~seed:5 (fun eng net server client ->
          Net.set_host_up net 0 false;
          ignore
            (Env.thread client (fun () ->
                 let t0 = Engine.now eng in
                 let r =
                   Rpc.a_call client server.Env.me
                     ~options:{ Rpc.default_options with timeout = 1.0; retries = 2 }
                     "echo" []
                 in
                 (match r with
                 | Error Rpc.Timeout -> ()
                 | _ -> Alcotest.fail "expected Timeout after retries");
                 let elapsed = Engine.now eng -. t0 in
                 Alcotest.(check bool)
                   (Printf.sprintf "three attempts took %.1fs" elapsed)
                   true
                   (elapsed >= 3.0 && elapsed < 3.5))));
      Alcotest.(check int) "two retries recorded" 2
        (Obs.counter_value (Obs.counter "rpc.retries"));
      Alcotest.(check int) "one logical call" 1 (Obs.counter_value (Obs.counter "rpc.calls")))

(* Exponential backoff with seeded jitter (the [splay check] satellite of
   the retry policy): pause before retry [n] is [backoff * 2^(n-1)],
   stretched by a uniform factor in [1, 1+jitter] drawn from the
   instance's dedicated RPC stream. *)
let backoff_elapsed ~seed ~jitter =
  let elapsed = ref nan in
  let trace =
    with_obs (fun () ->
        two_host_rpc ~seed (fun eng net server client ->
            Net.set_host_up net 0 false;
            ignore
              (Env.thread client (fun () ->
                   let t0 = Engine.now eng in
                   (match
                      Rpc.a_call client server.Env.me
                        ~options:
                          { Rpc.timeout = 1.0; retries = 2; backoff = 0.5; backoff_jitter = jitter }
                        "echo" []
                    with
                   | Error Rpc.Timeout -> ()
                   | _ -> Alcotest.fail "expected Timeout after retries");
                   elapsed := Engine.now eng -. t0)));
        Obs.trace_jsonl ())
  in
  (!elapsed, trace)

let test_backoff_timing () =
  let elapsed, trace = backoff_elapsed ~seed:9 ~jitter:0.0 in
  (* attempts start at t = 0, 1.5 (1s timeout + 0.5s pause) and 3.5
     (+ 1s timeout + 1s doubled pause); the last deadline lands at 4.5 *)
  Alcotest.(check (float 1e-6)) "jitter-free exponential schedule" 4.5 elapsed;
  Alcotest.(check bool) "retry spans in trace" true (contains trace "\"name\":\"rpc.retry\"");
  Alcotest.(check bool) "backoff delay recorded on the span" true
    (contains trace "\"delay\":\"0.500000\"")

let test_backoff_jitter_deterministic () =
  let e1, _ = backoff_elapsed ~seed:9 ~jitter:0.5 in
  let e2, _ = backoff_elapsed ~seed:9 ~jitter:0.5 in
  Alcotest.(check (float 1e-9)) "same seed, same schedule" e1 e2;
  (* total stretch is bounded by jitter * (sum of base pauses) = 0.5 * 1.5 *)
  Alcotest.(check bool)
    (Printf.sprintf "jitter stretches within bounds (%.3fs)" e1)
    true
    (e1 > 4.5 && e1 <= 4.5 +. (0.5 *. 1.5) +. 1e-9)

let test_ok_span_outcome () =
  with_obs (fun () ->
      two_host_rpc ~seed:8 (fun _eng _net server client ->
          ignore
            (Env.thread client (fun () ->
                 match Rpc.a_call client server.Env.me "echo" [ Codec.Int 42 ] with
                 | Ok _ -> ()
                 | Error e -> Alcotest.failf "echo failed: %s" (Rpc.error_to_string e))));
      let trace = Obs.trace_jsonl () in
      Alcotest.(check bool) "ok outcome recorded" true (contains trace "\"outcome\":\"ok\"");
      Alcotest.(check bool) "serve span present" true (contains trace "\"name\":\"rpc.serve\"");
      Alcotest.(check bool) "serve time observed" true
        (Obs.histogram_count (Obs.histogram "rpc.serve_time") >= 1))

(* {2 Engine.run statistics} *)

let test_run_stats () =
  let eng = Engine.create ~seed:1 () in
  let fired = ref 0 in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:(Float.of_int i) (fun () -> incr fired))
  done;
  let st = Engine.run eng in
  Alcotest.(check int) "five events fired" 5 st.Engine.events_fired;
  Alcotest.(check int) "callbacks ran" 5 !fired;
  Alcotest.(check (float 1e-9)) "final clock at last event" 5.0 st.Engine.final_clock;
  Alcotest.(check bool) "queue depth high-water" true (st.Engine.max_queue_depth >= 5);
  let again = Engine.stats eng in
  Alcotest.(check int) "stats are cumulative" 5 again.Engine.events_fired

(* {2 Selection report} *)

let with_ctl_platform f =
  let eng = Engine.create ~seed:11 () in
  let tb0 = Testbed.cluster ~n:6 (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init 6 Fun.id) in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown daemons;
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () -> f ctl)));
  ignore (Engine.run ~until:1000.0 eng);
  match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e)

(* {2 Controller log collection} *)

let test_log_collection () =
  let records = ref None and records_quiet = ref None in
  with_ctl_platform (fun ctl ->
      let main env =
        Log.info env.Env.log "up at position %d" env.Env.position;
        Log.debug env.Env.log "below the default threshold"
      in
      let dep =
        Controller.deploy ctl ~name:"logger" ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 4)
      in
      Env.sleep 5.0;
      records :=
        Some (Controller.job_log dep, Controller.logs_jsonl dep, Controller.job_log_dropped dep);
      (* a second job deployed at Warn collects nothing: Info records are
         filtered at the emitting node, not at the collector *)
      let dep2 =
        Controller.deploy ctl ~name:"quiet" ~log_level:Log.Warn ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 4)
      in
      Env.sleep 5.0;
      records_quiet := Some (Controller.job_log dep2);
      Controller.undeploy dep;
      Controller.undeploy dep2);
  (match !records with
  | None -> Alcotest.fail "deployment did not run"
  | Some (recs, jsonl, dropped) ->
      Alcotest.(check int) "one Info record per instance" 4 (List.length recs);
      Alcotest.(check int) "nothing dropped" 0 dropped;
      let nodes = List.sort_uniq compare (List.map (fun r -> r.Controller.lr_node) recs) in
      Alcotest.(check int) "records tagged with distinct nodes" 4 (List.length nodes);
      List.iter
        (fun r ->
          (match r.Controller.lr_level with
          | Log.Info -> ()
          | l -> Alcotest.failf "unexpected level %s" (Log.level_to_string l));
          Alcotest.(check bool) "formatted message" true
            (contains r.Controller.lr_msg "up at position"))
        recs;
      Alcotest.(check bool) "jsonl carries L records" true (contains jsonl "\"ev\":\"L\"");
      Alcotest.(check bool) "jsonl carries the level" true (contains jsonl "\"level\":\"info\""));
  (match !records_quiet with
  | None -> Alcotest.fail "second deployment did not run"
  | Some recs -> Alcotest.(check int) "Warn threshold filters at the node" 0 (List.length recs))

let test_select_report () =
  with_ctl_platform (fun ctl ->
      (* no criteria: everything alive matches *)
      let chosen, rep = Controller.select_report ctl 4 in
      Alcotest.(check int) "four chosen" 4 (List.length chosen);
      Alcotest.(check int) "all alive" 6 rep.Controller.sel_alive;
      Alcotest.(check int) "all matched" 6 rep.Controller.sel_matched;
      Alcotest.(check int) "none dead" 0 rep.Controller.sel_dead;
      (* an unsatisfiable criterion: the report says which one rejected *)
      let chosen, rep =
        Controller.select_report ctl ~criteria:[ Controller.Min_bandwidth infinity ] 4
      in
      Alcotest.(check int) "nothing selectable" 0 (List.length chosen);
      Alcotest.(check int) "nothing matched" 0 rep.Controller.sel_matched;
      (match rep.Controller.sel_rejected with
      | [ ("min_bandwidth", n) ] -> Alcotest.(check int) "all charged to min_bandwidth" 6 n
      | other ->
          Alcotest.failf "unexpected rejection report (%d entries)" (List.length other));
      (* plain select agrees with the report variant *)
      Alcotest.(check int) "select returns none" 0
        (List.length (Controller.select ctl ~criteria:[ Controller.Min_bandwidth infinity ] 4)))

let () =
  Alcotest.run "splay_obs"
    [
      ( "obs",
        [
          Alcotest.test_case "deterministic trace" `Quick test_trace_deterministic;
          Alcotest.test_case "golden trace unchanged" `Quick test_golden_trace;
          Alcotest.test_case "golden after untraced run" `Quick test_golden_after_untraced_run;
          Alcotest.test_case "time format matches printf" `Quick test_time_format_matches_printf;
          Alcotest.test_case "cross-node linkage" `Quick test_cross_node_linkage;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
        ] );
      ( "rollup",
        [
          Alcotest.test_case "quantile accuracy" `Quick test_rollup_quantile_accuracy;
          Alcotest.test_case "zero bucket" `Quick test_rollup_zero_bucket;
          Alcotest.test_case "capture merge" `Quick test_rollup_capture_merge;
          Alcotest.test_case "window rotation" `Quick test_rollup_window_rotation;
          Alcotest.test_case "golden metrics plane" `Quick test_golden_metrics_plane;
          Alcotest.test_case "slo violation rate" `Quick test_slo_violation_rate;
          Alcotest.test_case "metrics-only records no spans" `Quick test_metrics_only_no_spans;
          Alcotest.test_case "trace cap" `Quick test_trace_cap;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "timeout span" `Quick test_timeout_span;
          Alcotest.test_case "retries" `Quick test_retries;
          Alcotest.test_case "backoff timing" `Quick test_backoff_timing;
          Alcotest.test_case "backoff jitter deterministic" `Quick
            test_backoff_jitter_deterministic;
          Alcotest.test_case "ok outcome" `Quick test_ok_span_outcome;
        ] );
      ("engine", [ Alcotest.test_case "run stats" `Quick test_run_stats ]);
      ( "controller",
        [
          Alcotest.test_case "selection report" `Quick test_select_report;
          Alcotest.test_case "log collection" `Quick test_log_collection;
        ] );
    ]
