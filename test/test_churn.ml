(* Tests for the churn manager: script language, traces, transforms,
   replayer driving a live deployment. *)

open Splay_sim
open Splay_net
open Splay_runtime
open Splay_ctl
open Splay_churn

let fig4_script =
  {|at 30s join 10
from 5m to 10m inc 10
from 10m to 15m const churn 50%
at 15m leave 50%
from 15m to 20m inc 10 churn 150%
at 20m stop|}

(* {2 Script language} *)

let test_script_parse_fig4 () =
  let s = Script.parse fig4_script in
  Alcotest.(check int) "six phases" 6 (List.length s);
  Alcotest.(check (float 1e-9)) "duration 20m" 1200.0 (Script.duration s);
  match s with
  | Script.At (30.0, Script.Join 10)
    :: Script.Interval { start = 300.0; finish = 600.0; inc_per_min = 10; churn_pct = 0.0 }
    :: Script.Interval { start = 600.0; finish = 900.0; inc_per_min = 0; churn_pct = 50.0 }
    :: Script.At (900.0, Script.Leave_pct 50.0)
    :: Script.Interval { start = 900.0; finish = 1200.0; inc_per_min = 10; churn_pct = 150.0 }
    :: [ Script.At (1200.0, Script.Stop) ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_script_time_units () =
  match Script.parse "at 90 join 1\nat 2m join 2\nat 1h join 3" with
  | [ Script.At (90.0, _); Script.At (120.0, _); Script.At (3600.0, _) ] -> ()
  | _ -> Alcotest.fail "time units"

let test_script_sorts_phases () =
  match Script.parse "at 2m join 1\nat 1m join 2" with
  | [ Script.At (60.0, Script.Join 2); Script.At (120.0, Script.Join 1) ] -> ()
  | _ -> Alcotest.fail "not sorted"

let test_script_errors () =
  let bad src =
    match Script.parse src with
    | exception Script.Syntax_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" src
  in
  bad "at 10s dance 3";
  bad "at join 3";
  bad "from 5m to 3m inc 10";
  bad "at 10s join 50%";
  bad "from 1m to 2m inc 10 churn fast";
  bad "at -5s join 1"

let test_script_profile () =
  let s = Script.parse fig4_script in
  let prof = Script.profile s ~bin:60.0 ~initial:0 in
  let pop_at minute =
    let _, p, _, _ = List.nth prof minute in
    p
  in
  Alcotest.(check int) "initial joins" 10 (pop_at 0);
  Alcotest.(check int) "stable until 5m" 10 (pop_at 4);
  Alcotest.(check int) "linear growth to 60" 60 (pop_at 10);
  Alcotest.(check int) "constant during churn" 60 (pop_at 14);
  (* minute 15: the massive leave (60 -> 30) and one minute of the resumed
     +10/min growth both land in this bin *)
  Alcotest.(check int) "half left at 15m, growth resumed" 40 (pop_at 15);
  Alcotest.(check int) "regrown to 80 before stop" 80 (pop_at 19);
  Alcotest.(check int) "zero after stop" 0 (pop_at 20);
  (* churn phase has both joins and leaves every minute *)
  let _, _, j, l = List.nth prof 12 in
  Alcotest.(check bool) "churn joins" true (j > 0);
  Alcotest.(check bool) "churn leaves" true (l > 0)

(* {2 Traces} *)

let test_trace_parse_roundtrip () =
  let src = "0.0 join 1\n5.0 join 2\n9.5 leave 1\n# comment\n\n12.0 join 1" in
  let t = Trace.of_string src in
  Alcotest.(check int) "events" 4 (List.length t);
  let t2 = Trace.of_string (Trace.to_string t) in
  Alcotest.(check int) "roundtrip" 4 (List.length t2);
  Alcotest.(check int) "population mid" 2 (Trace.population t ~at:6.0);
  Alcotest.(check int) "population after leave" 1 (Trace.population t ~at:10.0)

let test_trace_validation () =
  let bad src =
    match Trace.of_string src with
    | exception Trace.Format_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" src
  in
  bad "0.0 join 1\n1.0 join 1";
  bad "0.0 leave 1";
  bad "0.0 frobnicate 1";
  bad "zero join 1"

let test_trace_synthetic_overnet () =
  let rng = Rng.create 5 in
  let t = Trace.synthetic_overnet ~concurrent:200 ~duration:3000.0 rng in
  Alcotest.(check bool) "has events" true (List.length t > 100);
  (* average population near the target *)
  let series = Trace.population_series t ~bin:60.0 in
  let later = List.filteri (fun i _ -> i > 5) series in
  let avg =
    List.fold_left (fun acc (_, p) -> acc +. Float.of_int p) 0.0 later
    /. Float.of_int (List.length later)
  in
  Alcotest.(check bool)
    (Printf.sprintf "population near 200 (got %.0f)" avg)
    true
    (avg > 120.0 && avg < 280.0);
  Alcotest.(check bool) "continuous churn" true (Trace.churn_rate t ~bin:300.0 > 0.002)

let test_transform_speedup () =
  let rng = Rng.create 6 in
  (* long enough that the (long-session) trace has real churn *)
  let t = Trace.synthetic_overnet ~concurrent:80 ~duration:8000.0 rng in
  let fast = Transform.speedup 2.0 t in
  Alcotest.(check int) "same events" (List.length t) (List.length fast);
  Alcotest.(check bool) "half duration" true
    (Float.abs ((Trace.duration t /. 2.0) -. Trace.duration fast) < 1e-6);
  (* churn rate roughly doubles per wall-clock bin *)
  let r1 = Trace.churn_rate t ~bin:60.0 and r2 = Trace.churn_rate fast ~bin:60.0 in
  Alcotest.(check bool) "volatility increased" true (r2 > r1)

let test_transform_amplify () =
  let rng = Rng.create 7 in
  let t = Trace.synthetic_overnet ~concurrent:50 ~duration:1000.0 rng in
  let big = Transform.amplify rng 2.0 t in
  Alcotest.(check int) "double events" (2 * List.length t) (List.length big);
  (* still a valid trace (validation runs in of_string) *)
  ignore (Trace.of_string (Trace.to_string big));
  let p1 = Trace.population t ~at:500.0 and p2 = Trace.population big ~at:500.0 in
  Alcotest.(check bool) "double population" true (abs (p2 - (2 * p1)) <= p1)

let test_transform_crop () =
  let t =
    Trace.of_string "0.0 join 1\n10.0 join 2\n20.0 leave 1\n30.0 join 3\n40.0 leave 2"
  in
  let c = Transform.crop ~from:15.0 ~until:35.0 t in
  (* nodes 1 and 2 were up at t=15 -> reopened at 0; then leave 1 at 5,
     join 3 at 15 *)
  Alcotest.(check int) "events" 4 (List.length c);
  ignore (Trace.of_string (Trace.to_string c));
  Alcotest.(check int) "population at crop end" 2 (Trace.population c ~at:16.0)

let test_transform_renumber () =
  let t = Trace.of_string "0.0 join 42\n1.0 join 7\n2.0 leave 42" in
  let r = Transform.renumber t in
  Alcotest.(check (list int)) "compact ids" [ 0; 0; 1 ]
    (List.map (fun e -> e.Trace.node) (List.sort (fun a b -> Float.compare a.Trace.time b.Trace.time) r)
    |> fun l -> [ List.nth l 0; List.nth l 2; List.nth l 1 ])

(* {2 Replayer against a live deployment} *)

let with_platform ?(hosts = 10) f =
  let eng = Engine.create ~seed:21 () in
  let tb0 = Testbed.cluster ~n:hosts (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init hosts Fun.id) in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             (* tear the platform down so the event queue drains *)
             List.iter Daemon.shutdown daemons;
             (* defer: stopping the controller env from inside this very
                process would self-kill through the finally *)
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () -> f eng net ctl)));
  ignore (Engine.run ~until:36000.0 eng);
  match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e)

let noop_app (_ : Env.t) = ()

let deploy_noop ctl n =
  Controller.deploy ctl ~name:"noop" ~main:noop_app (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)

let test_replayer_script_grows_and_shrinks () =
  with_platform (fun _ _ ctl ->
      let dep = deploy_noop ctl 10 in
      let script = Script.parse "from 0s to 2m inc 10\nat 3m leave 50%\nat 4m stop" in
      let _proc, stats = Replayer.run_script dep script in
      Env.sleep 125.0;
      Alcotest.(check bool)
        (Printf.sprintf "grew to ~30 (got %d)" (Controller.live_count dep))
        true
        (abs (Controller.live_count dep - 30) <= 3);
      Env.sleep 60.0;
      let after_half = Controller.live_count dep in
      Alcotest.(check bool)
        (Printf.sprintf "halved (got %d)" after_half)
        true
        (abs (after_half - 15) <= 3);
      Env.sleep 60.0;
      Alcotest.(check int) "stop clears everyone" 0 (Controller.live_count dep);
      Alcotest.(check bool) "stats track events" true (stats.Replayer.joins >= 18 && stats.Replayer.leaves >= 25))

let test_replayer_const_churn_keeps_population () =
  with_platform (fun _ _ ctl ->
      let dep = deploy_noop ctl 20 in
      let observed = ref 0 in
      let script = Script.parse "from 0s to 3m const churn 50%" in
      let _proc, stats =
        Replayer.run_script ~observer:(fun _ _ -> incr observed) dep script
      in
      Env.sleep 185.0;
      Alcotest.(check bool)
        (Printf.sprintf "population stable (got %d)" (Controller.live_count dep))
        true
        (abs (Controller.live_count dep - 20) <= 4);
      (* 50% churn of 20 nodes over 3 minutes: ~30 joins + ~30 leaves *)
      Alcotest.(check bool)
        (Printf.sprintf "real turnover (joins=%d leaves=%d)" stats.Replayer.joins stats.Replayer.leaves)
        true
        (stats.Replayer.joins >= 20 && stats.Replayer.leaves >= 20);
      Alcotest.(check int) "observer saw everything" (stats.Replayer.joins + stats.Replayer.leaves) !observed)

let test_replayer_trace () =
  with_platform (fun _ _ ctl ->
      let dep = deploy_noop ctl 3 in
      let trace =
        Trace.of_string
          "0.0 join 100\n0.0 join 101\n0.0 join 102\n30.0 leave 100\n60.0 join 103\n90.0 leave 101"
      in
      let _proc, stats = Replayer.run_trace dep trace in
      Env.sleep 45.0;
      Alcotest.(check int) "one down at 45s" 2 (Controller.live_count dep);
      Env.sleep 30.0;
      Alcotest.(check int) "join 103 added a node" 3 (Controller.live_count dep);
      Env.sleep 30.0;
      Alcotest.(check int) "final population" 2 (Controller.live_count dep);
      Alcotest.(check int) "no failed joins" 0 stats.Replayer.failed_joins)

let test_replayer_maintain () =
  with_platform (fun eng _ ctl ->
      let dep = deploy_noop ctl 10 in
      let proc = Replayer.maintain ~target:10 ~interval:30.0 dep in
      (* kill 4 nodes; the maintainer must restore the population *)
      List.iteri
        (fun i (_, a, _) -> if i < 4 then Controller.crash_node dep a)
        (Controller.live_members dep);
      Alcotest.(check int) "dropped" 6 (Controller.live_count dep);
      Env.sleep 100.0;
      Alcotest.(check int) "restored" 10 (Controller.live_count dep);
      Engine.kill eng proc)


(* {2 Property-based tests} *)

let gen_action =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun k -> Script.Join k) (int_range 1 50));
        (2, map (fun k -> Script.Leave_count k) (int_range 1 50));
        (2, map (fun p -> Script.Leave_pct (Float.of_int p)) (int_range 1 100));
        (1, return Script.Stop);
      ])

let gen_phase =
  QCheck.Gen.(
    let time = map (fun m -> Float.of_int m) (int_range 0 3600) in
    frequency
      [
        (3, map2 (fun t a -> Script.At (t, a)) time gen_action);
        ( 2,
          map3
            (fun start len (inc, churn) ->
              Script.Interval
                {
                  start;
                  finish = start +. Float.of_int len;
                  inc_per_min = inc;
                  churn_pct = Float.of_int churn;
                })
            time (int_range 60 1200)
            (pair (int_range (-20) 20) (int_range 0 200)) );
      ])

let gen_script = QCheck.Gen.(list_size (int_range 1 8) gen_phase)

let prop_script_roundtrip =
  QCheck.Test.make ~name:"script to_string/parse roundtrip" ~count:300
    (QCheck.make ~print:(fun s -> Script.to_string s) gen_script)
    (fun phases ->
      (* normalize through one parse (sorting), then round-trip *)
      let s1 = Script.parse (Script.to_string phases) in
      let s2 = Script.parse (Script.to_string s1) in
      s1 = s2 && List.length s1 = List.length phases)

let gen_trace =
  QCheck.Gen.(
    let* nodes = int_range 1 10 in
    let* events_per_node = int_range 0 6 in
    let* start_ms = array_size (return nodes) (int_range 0 5_000) in
    return
      (List.concat
         (List.init nodes (fun node ->
              List.init events_per_node (fun i ->
                  {
                    Trace.time = Float.of_int (start_ms.(node) + (i * 1000)) /. 1000.0;
                    node;
                    action = (if i mod 2 = 0 then `Join else `Leave);
                  })))))

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace to_string/of_string roundtrip" ~count:300
    (QCheck.make ~print:Trace.to_string gen_trace)
    (fun t ->
      let t' = Trace.of_string (Trace.to_string t) in
      List.length t = List.length t'
      && List.for_all2
           (fun a b ->
             a.Trace.node = b.Trace.node
             && a.Trace.action = b.Trace.action
             && Float.abs (a.Trace.time -. b.Trace.time) < 0.001)
           (List.stable_sort (fun a b -> Float.compare a.Trace.time b.Trace.time) t)
           t')

let prop_crop_valid =
  QCheck.Test.make ~name:"crop yields valid traces" ~count:300
    (QCheck.make ~print:Trace.to_string gen_trace)
    (fun t ->
      QCheck.assume (t <> []);
      let d = Float.max 1.0 (Trace.duration t) in
      let c = Transform.crop ~from:(d /. 4.0) ~until:(3.0 *. d /. 4.0) t in
      (* validation happens inside of_string; it raises on bad traces *)
      match Trace.of_string (Trace.to_string c) with _ -> true)

let prop_speedup_preserves_event_count =
  QCheck.Test.make ~name:"speedup preserves events and order" ~count:300
    (QCheck.make ~print:Trace.to_string gen_trace)
    (fun t ->
      let f = Transform.speedup 3.0 t in
      List.length f = List.length t
      && List.for_all2 (fun a b -> a.Trace.node = b.Trace.node) t f)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_script_roundtrip; prop_trace_roundtrip; prop_crop_valid; prop_speedup_preserves_event_count ]

let test_replayer_deterministic () =
  (* the paper's point: the same churn scenario can be replayed exactly,
     making protocol comparisons fair; with a fixed seed the whole run —
     deployment, churn, failures — is bit-identical *)
  let run seed =
    let eng = Engine.create ~seed () in
    let tb0 = Testbed.cluster ~n:10 (Engine.rng eng) in
    let tb, ctl_host = Testbed.with_extra_host tb0 in
    let net = Net.create eng tb in
    let ctl = Controller.create net ~host:ctl_host in
    let daemons = Controller.boot_daemons ctl (List.init 10 Fun.id) in
    let out = ref (0, 0, 0.0) in
    ignore
      (Env.thread (Controller.env ctl) (fun () ->
           Fun.protect
             ~finally:(fun () ->
               List.iter Daemon.shutdown daemons;
               ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
             (fun () ->
               let dep =
                 Controller.deploy ctl ~name:"noop" ~main:(fun _ -> ())
                   (Descriptor.make ~bootstrap:(Descriptor.Head 1) 10)
               in
               let script = Script.parse "from 0s to 2m const churn 40%\nat 3m leave 30%" in
               let _proc, stats = Replayer.run_script dep script in
               Env.sleep 200.0;
               out := (stats.Replayer.joins, stats.Replayer.leaves, Engine.now eng))));
    ignore (Engine.run ~until:36000.0 eng);
    !out
  in
  let a = run 77 and b = run 77 in
  Alcotest.(check bool) "same seed, identical churn" true (a = b)

let () =
  Alcotest.run "splay_churn"
    [
      ( "script",
        [
          Alcotest.test_case "parse fig4" `Quick test_script_parse_fig4;
          Alcotest.test_case "time units" `Quick test_script_time_units;
          Alcotest.test_case "sorted" `Quick test_script_sorts_phases;
          Alcotest.test_case "errors" `Quick test_script_errors;
          Alcotest.test_case "profile" `Quick test_script_profile;
        ] );
      ( "trace",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_trace_parse_roundtrip;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "synthetic overnet" `Quick test_trace_synthetic_overnet;
        ] );
      ( "transform",
        [
          Alcotest.test_case "speedup" `Quick test_transform_speedup;
          Alcotest.test_case "amplify" `Quick test_transform_amplify;
          Alcotest.test_case "crop" `Quick test_transform_crop;
          Alcotest.test_case "renumber" `Quick test_transform_renumber;
        ] );
      ( "replayer",
        [
          Alcotest.test_case "script grows and shrinks" `Quick test_replayer_script_grows_and_shrinks;
          Alcotest.test_case "const churn" `Quick test_replayer_const_churn_keeps_population;
          Alcotest.test_case "trace" `Quick test_replayer_trace;
          Alcotest.test_case "maintain" `Quick test_replayer_maintain;
          Alcotest.test_case "deterministic replay" `Quick test_replayer_deterministic;
        ] );
      ("properties", qsuite);
    ]
