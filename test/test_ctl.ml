(* Tests for the controller side: descriptors, daemons, deployment
   protocol, sessions, blacklist. *)

open Splay_sim
open Splay_net
open Splay_runtime
open Splay_ctl

(* {2 Descriptor} *)

let test_descriptor_parse () =
  let src =
    {|
-- my app
--[[ BEGIN SPLAY RESOURCES RESERVATION
nb_splayd 1000
nodes head 1
max_mem 2097152
END SPLAY RESOURCES RESERVATION ]]
print("hello")
|}
  in
  let d = Descriptor.parse src in
  Alcotest.(check int) "nb_splayd" 1000 d.Descriptor.nb_splayd;
  (match d.Descriptor.bootstrap with
  | Descriptor.Head 1 -> ()
  | _ -> Alcotest.fail "bootstrap");
  Alcotest.(check int) "max_mem" 2_097_152 d.Descriptor.limits.Sandbox.max_memory

let test_descriptor_defaults () =
  let d = Descriptor.parse "no header here" in
  Alcotest.(check int) "one instance" 1 d.Descriptor.nb_splayd

let test_descriptor_errors () =
  let bad src msg =
    match Descriptor.parse src with
    | exception Descriptor.Syntax_error _ -> ()
    | _ -> Alcotest.fail msg
  in
  bad "--[[ BEGIN SPLAY RESOURCES RESERVATION\nnb_splayd 10" "missing end";
  bad
    "--[[ BEGIN SPLAY RESOURCES RESERVATION\nfrobnicate 3\nEND SPLAY RESOURCES RESERVATION ]]"
    "unknown key";
  bad
    "--[[ BEGIN SPLAY RESOURCES RESERVATION\nnb_splayd many\nEND SPLAY RESOURCES RESERVATION ]]"
    "bad int"

let test_descriptor_roundtrip () =
  let d =
    Descriptor.make ~bootstrap:(Descriptor.Random_subset 5)
      ~limits:{ Sandbox.unlimited with Sandbox.max_memory = 1 lsl 20 }
      64
  in
  let d' = Descriptor.parse (Descriptor.to_string d) in
  Alcotest.(check int) "nb" 64 d'.Descriptor.nb_splayd;
  (match d'.Descriptor.bootstrap with
  | Descriptor.Random_subset 5 -> ()
  | _ -> Alcotest.fail "bootstrap");
  Alcotest.(check int) "mem" (1 lsl 20) d'.Descriptor.limits.Sandbox.max_memory

(* {2 Deployment fixtures} *)

let with_platform ?(hosts = 10) ?daemon_config f =
  let eng = Engine.create ~seed:11 () in
  let tb0 = Testbed.cluster ~n:hosts (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ?config:daemon_config ctl (List.init hosts Fun.id) in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown daemons;
             (* defer: stopping the controller env from inside this very
                process would self-kill through the finally *)
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () -> f eng net ctl daemons)));
  ignore (Engine.run ~until:36000.0 eng);
  match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e)

let noop_app (_ : Env.t) = ()

let test_deploy_counts_and_positions () =
  with_platform (fun _ _ ctl _ ->
      let dep =
        Controller.deploy ctl ~name:"noop" ~main:noop_app (Descriptor.make ~bootstrap:(Descriptor.Head 1) 30)
      in
      let ms = Controller.members dep in
      Alcotest.(check int) "30 instances" 30 (List.length ms);
      let positions = List.map (fun (_, _, p) -> p) ms in
      Alcotest.(check (list int)) "positions 1..30" (List.init 30 (fun i -> i + 1))
        (List.sort Int.compare positions);
      let addrs = List.map (fun (_, a, _) -> Addr.to_string a) ms in
      Alcotest.(check int) "addresses unique" 30 (List.length (List.sort_uniq String.compare addrs));
      Alcotest.(check int) "all live" 30 (Controller.live_count dep))

let test_deploy_app_really_runs () =
  with_platform (fun _ _ ctl _ ->
      let ran = ref 0 in
      let main env =
        incr ran;
        Log.info env.Env.log "instance %d up" env.Env.position
      in
      let dep = Controller.deploy ctl ~name:"counter" ~main (Descriptor.make 8) in
      Env.sleep 1.0;
      Alcotest.(check int) "all instances executed" 8 !ran;
      Alcotest.(check int) "log collector got the lines" 8 (Controller.log_lines dep);
      Alcotest.(check bool) "log bytes counted" true (Controller.log_bytes dep > 0))

let test_deploy_bootstrap_head () =
  with_platform (fun _ _ ctl _ ->
      let seen = ref [] in
      let main env = seen := (env.Env.position, env.Env.nodes) :: !seen in
      let dep =
        Controller.deploy ctl ~name:"boot" ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 12)
      in
      Env.sleep 1.0;
      let rendezvous =
        match List.assoc 1 !seen with
        | [ a ] -> a
        | _ -> Alcotest.fail "head 1 must give exactly one node"
      in
      List.iter
        (fun (_, nodes) ->
          match nodes with
          | [ a ] -> Alcotest.(check string) "same rendezvous" (Addr.to_string rendezvous) (Addr.to_string a)
          | _ -> Alcotest.fail "expected singleton")
        !seen;
      (* the rendezvous node is position 1's own address *)
      let _, a1, _ = List.find (fun (_, _, p) -> p = 1) (Controller.members dep) in
      Alcotest.(check string) "rendezvous is first member" (Addr.to_string a1)
        (Addr.to_string rendezvous))

let test_deploy_superset_frees_extras () =
  with_platform (fun _ _ ctl daemons ->
      ignore (Controller.deploy ctl ~name:"noop" ~main:noop_app (Descriptor.make 10));
      (* give async FREEs time to land *)
      Env.sleep 120.0;
      let total = List.fold_left (fun acc d -> acc + Daemon.instance_count d) 0 daemons in
      Alcotest.(check int) "supernumerary instances freed" 10 total)

let test_multiple_instances_per_host () =
  with_platform ~hosts:3 (fun _ _ ctl daemons ->
      ignore (Controller.deploy ctl ~name:"noop" ~main:noop_app (Descriptor.make 12));
      Env.sleep 60.0;
      List.iter
        (fun d ->
          Alcotest.(check bool) "several instances per host" true (Daemon.instance_count d >= 2))
        daemons)

let test_controller_blacklisted_for_apps () =
  with_platform (fun _ _ ctl _ ->
      let result = ref None in
      let ctl_addr = Controller.addr ctl in
      let main env =
        Rpc.client env;
        result := Some (Rpc.a_call env ctl_addr ~timeout:5.0 "ctl.heartbeat" [ Codec.Int 0 ])
      in
      ignore (Controller.deploy ctl ~name:"sneaky" ~main (Descriptor.make 1));
      Env.sleep 10.0;
      match !result with
      | Some (Error (Rpc.Network _)) -> ()
      | Some _ -> Alcotest.fail "application reached the controller"
      | None -> Alcotest.fail "app did not run")

let test_probe () =
  with_platform (fun _ _ ctl daemons ->
      match Controller.probe ctl (List.hd daemons) with
      | Some rtt -> Alcotest.(check bool) "positive rtt" true (rtt > 0.0)
      | None -> Alcotest.fail "probe timed out on a healthy LAN host")

let test_probe_dead_host () =
  with_platform (fun _ net ctl daemons ->
      let d = List.hd daemons in
      Net.set_host_up net (Daemon.host d) false;
      Alcotest.(check bool) "no rtt from dead host" true (Controller.probe ctl d = None))

let test_add_and_crash_node () =
  with_platform (fun _ _ ctl _ ->
      let dep = Controller.deploy ctl ~name:"noop" ~main:noop_app (Descriptor.make 5) in
      Alcotest.(check int) "initial" 5 (Controller.live_count dep);
      (match Controller.add_node dep with
      | Some _ -> ()
      | None -> Alcotest.fail "join refused");
      Alcotest.(check int) "after join" 6 (Controller.live_count dep);
      let _, victim, _ = List.hd (Controller.live_members dep) in
      Controller.crash_node dep victim;
      Alcotest.(check int) "after crash" 5 (Controller.live_count dep);
      (* crash is not an error for the others *)
      Alcotest.(check int) "members history keeps all" 6 (List.length (Controller.members dep)))

let test_undeploy () =
  with_platform (fun _ _ ctl daemons ->
      let dep = Controller.deploy ctl ~name:"noop" ~main:noop_app (Descriptor.make 6) in
      Controller.undeploy dep;
      Env.sleep 10.0;
      Alcotest.(check int) "no live members" 0 (Controller.live_count dep);
      let total = List.fold_left (fun acc d -> acc + Daemon.instance_count d) 0 daemons in
      Alcotest.(check int) "daemons emptied" 0 total)

let test_sessions_mark_dead_daemons () =
  let eng = Engine.create ~seed:3 () in
  let tb0 = Testbed.cluster ~n:4 (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  (* short unseen timeout so the test does not simulate an hour *)
  let ctl = Controller.create ~unseen_timeout:200.0 net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init 4 Fun.id) in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Env.sleep 100.0;
         Alcotest.(check int) "all alive while heartbeating" 4
           (List.length (Controller.alive_daemons ctl));
         Net.set_host_up net (Daemon.host (List.hd daemons)) false;
         Env.sleep 400.0;
         Alcotest.(check int) "silent daemon dropped" 3
           (List.length (Controller.alive_daemons ctl))));
  ignore (Engine.run ~until:1000.0 eng)

let test_deploy_survives_dead_candidates () =
  with_platform ~hosts:8 (fun _ net ctl daemons ->
      (* two hosts die before deployment: registration to them times out,
         refill rounds cover the shortfall *)
      Net.set_host_up net (Daemon.host (List.nth daemons 0)) false;
      Net.set_host_up net (Daemon.host (List.nth daemons 1)) false;
      let dep =
        Controller.deploy ctl ~register_timeout:5.0 ~name:"noop" ~main:noop_app
          (Descriptor.make 6)
      in
      Alcotest.(check int) "full deployment despite failures" 6 (Controller.live_count dep);
      List.iter
        (fun (d, _, _) ->
          Alcotest.(check bool) "no instance on a dead host" true
            (Net.host_up net (Daemon.host d)))
        (Controller.members dep))

let test_sandbox_restrictions_applied () =
  with_platform (fun _ _ ctl _ ->
      let observed = ref None in
      let main env = observed := Some (Sandbox.limits env.Env.sandbox) in
      let desc =
        Descriptor.make ~limits:{ Sandbox.unlimited with Sandbox.max_memory = 1234 } 1
      in
      ignore (Controller.deploy ctl ~name:"limits" ~main desc);
      Env.sleep 1.0;
      match !observed with
      | Some l -> Alcotest.(check int) "controller restriction applied" 1234 l.Sandbox.max_memory
      | None -> Alcotest.fail "app did not run")

let test_lossy_deployment () =
  with_platform (fun _ _ ctl _ ->
      (* two instances told to drop half their packets: RPCs between them
         fail noticeably more often than on a clean deployment *)
      let envs = ref [] in
      let main env =
        Rpc.server env [ ("noop", fun _ -> Codec.Null) ];
        envs := env :: !envs
      in
      let desc = Descriptor.make ~bootstrap:(Descriptor.Head 1) ~loss:0.5 2 in
      ignore (Controller.deploy ctl ~name:"lossy" ~main desc);
      Env.sleep 1.0;
      match !envs with
      | [ a; b ] ->
          List.iter
            (fun (e : Env.t) ->
              Alcotest.(check (float 1e-9)) "loss applied" 0.5 e.Env.loss_rate)
            [ a; b ];
          let failures = ref 0 in
          for _ = 1 to 40 do
            match Rpc.a_call a b.Env.me ~timeout:1.0 "noop" [] with
            | Ok _ -> ()
            | Error _ -> incr failures
          done;
          (* P(round trip survives) = 0.25, so ~30 of 40 should fail *)
          Alcotest.(check bool)
            (Printf.sprintf "lossy links break RPCs (%d/40 failed)" !failures)
            true
            (!failures > 15)
      | _ -> Alcotest.fail "expected two instances")

let test_descriptor_loss_roundtrip () =
  let d = Descriptor.make ~loss:0.25 3 in
  let d' = Descriptor.parse (Descriptor.to_string d) in
  Alcotest.(check (float 1e-9)) "loss survives roundtrip" 0.25 d'.Descriptor.loss;
  (match
    Descriptor.parse
      "--[[ BEGIN SPLAY RESOURCES RESERVATION\nloss 1.5\nEND SPLAY RESOURCES RESERVATION ]]"
  with
  | exception Descriptor.Syntax_error _ -> ()
  | _ -> Alcotest.fail "loss > 1 accepted")

let test_stop_and_restart_node () =
  with_platform (fun _ _ ctl _ ->
      let runs = ref 0 in
      let main _env = incr runs in
      let dep =
        Controller.deploy ctl ~name:"restartable" ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 3)
      in
      Env.sleep 1.0;
      Alcotest.(check int) "three instances ran" 3 !runs;
      let _, victim, _ = List.hd (Controller.live_members dep) in
      Controller.stop_node dep victim;
      Env.sleep 1.0;
      (* back to "selected": registered but not running *)
      Alcotest.(check int) "two live after STOP" 2 (Controller.live_count dep);
      Alcotest.(check int) "history keeps all three" 3 (List.length (Controller.members dep));
      Controller.restart_node dep victim;
      Env.sleep 1.0;
      Alcotest.(check int) "three live after re-START" 3 (Controller.live_count dep);
      Alcotest.(check int) "the application main ran again" 4 !runs)

let test_two_jobs_coexist () =
  with_platform (fun _ _ ctl _ ->
      (* the multi-user scenario: two jobs share daemons without interfering *)
      let a_runs = ref 0 and b_runs = ref 0 in
      let dep_a =
        Controller.deploy ctl ~name:"job-a" ~main:(fun _ -> incr a_runs) (Descriptor.make 8)
      in
      let dep_b =
        Controller.deploy ctl ~name:"job-b" ~main:(fun _ -> incr b_runs) (Descriptor.make 8)
      in
      Env.sleep 1.0;
      Alcotest.(check int) "job a ran" 8 !a_runs;
      Alcotest.(check int) "job b ran" 8 !b_runs;
      Alcotest.(check int) "a live" 8 (Controller.live_count dep_a);
      Alcotest.(check int) "b live" 8 (Controller.live_count dep_b);
      (* undeploying one job leaves the other untouched *)
      Controller.undeploy dep_a;
      Env.sleep 10.0;
      Alcotest.(check int) "a gone" 0 (Controller.live_count dep_a);
      Alcotest.(check int) "b unaffected" 8 (Controller.live_count dep_b))

let test_push_blacklist () =
  with_platform (fun _ _ ctl _ ->
      let dep = Controller.deploy ctl ~name:"noop" ~main:noop_app (Descriptor.make 3) in
      Controller.push_blacklist ctl 99;
      Env.sleep 1.0;
      List.iter
        (fun env ->
          Alcotest.(check bool) "blacklist pushed to running instances" true
            (Sandbox.blacklisted env.Env.sandbox 99))
        (Controller.live_envs dep))

(* {2 Job status and monitoring} *)

module Obs = Splay_obs.Obs

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_job_status () =
  with_platform (fun _ net ctl _ ->
      let dep = Controller.deploy ctl ~name:"statusy" ~main:noop_app (Descriptor.make 6) in
      let st = Controller.job_status dep in
      Alcotest.(check string) "job name" "statusy" st.Controller.st_name;
      Alcotest.(check int) "members" 6 st.Controller.st_members;
      Alcotest.(check int) "all live" 6 st.Controller.st_live;
      Alcotest.(check int) "no hosts down" 0 st.Controller.st_hosts_down;
      Alcotest.(check bool) "hosts up counted" true (st.Controller.st_hosts_up >= 1);
      Alcotest.(check bool) "worst list bounded by top" true
        (List.length st.Controller.st_worst <= 3);
      let wide = Controller.job_status ~top:100 dep in
      Alcotest.(check int) "top widens to every live instance" 6
        (List.length wide.Controller.st_worst);
      (* a crashed instance leaves the live count, not the history *)
      let _, victim, _ = List.hd (Controller.live_members dep) in
      Controller.crash_node dep victim;
      let st = Controller.job_status dep in
      Alcotest.(check int) "live after crash" 5 st.Controller.st_live;
      Alcotest.(check int) "members history intact" 6 st.Controller.st_members;
      (* a downed member host moves to the hosts-down column and its
         instances out of the live count *)
      let _, a, _ = List.hd (Controller.live_members dep) in
      Net.set_host_up net a.Addr.host false;
      let st = Controller.job_status dep in
      Alcotest.(check bool) "host counted down" true (st.Controller.st_hosts_down >= 1);
      Alcotest.(check bool) "its instances not live" true (st.Controller.st_live < 5);
      Net.set_host_up net a.Addr.host true;
      Alcotest.(check int) "restart restores the view" 5
        (Controller.job_status dep).Controller.st_live)

let test_monitor_emits_status_notes () =
  Obs.metrics_enabled := true;
  Obs.reset ();
  Obs.Rollup.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Rollup.clear ();
      Obs.reset ();
      Obs.metrics_enabled := false)
    (fun () ->
      with_platform (fun _ _ ctl _ ->
          let dep = Controller.deploy ctl ~name:"watched" ~main:noop_app (Descriptor.make 4) in
          Controller.monitor dep;
          (* three rollup windows' worth of sampling *)
          Env.sleep 35.0;
          Controller.undeploy dep);
      let dump = Obs.metrics_plane_jsonl () in
      Alcotest.(check bool) "ctl.job_status notes in the dump" true
        (contains dump "\"m\":\"ctl.job_status\"");
      Alcotest.(check bool) "notes carry the job name" true
        (contains dump "\"job\":\"watched\"");
      Alcotest.(check bool) "notes carry the live count" true (contains dump "\"live\":\"4\"");
      Alcotest.(check bool) "per-job live gauge sampled" true
        (contains dump "ctl.job.watched.live");
      Alcotest.(check bool) "telemetry histograms sampled" true
        (contains dump "\"m\":\"host.mem_bytes\"");
      Alcotest.(check bool) "engine gauge sampled" true
        (contains dump "\"m\":\"engine.pending_events\""))

let () =
  Alcotest.run "splay_ctl"
    [
      ( "descriptor",
        [
          Alcotest.test_case "parse" `Quick test_descriptor_parse;
          Alcotest.test_case "defaults" `Quick test_descriptor_defaults;
          Alcotest.test_case "errors" `Quick test_descriptor_errors;
          Alcotest.test_case "roundtrip" `Quick test_descriptor_roundtrip;
          Alcotest.test_case "loss roundtrip" `Quick test_descriptor_loss_roundtrip;
        ] );
      ( "deploy",
        [
          Alcotest.test_case "counts and positions" `Quick test_deploy_counts_and_positions;
          Alcotest.test_case "app really runs" `Quick test_deploy_app_really_runs;
          Alcotest.test_case "bootstrap head" `Quick test_deploy_bootstrap_head;
          Alcotest.test_case "superset freed" `Quick test_deploy_superset_frees_extras;
          Alcotest.test_case "instances per host" `Quick test_multiple_instances_per_host;
          Alcotest.test_case "survives dead candidates" `Quick test_deploy_survives_dead_candidates;
          Alcotest.test_case "sandbox restrictions" `Quick test_sandbox_restrictions_applied;
          Alcotest.test_case "undeploy" `Quick test_undeploy;
        ] );
      ( "control",
        [
          Alcotest.test_case "controller blacklisted" `Quick test_controller_blacklisted_for_apps;
          Alcotest.test_case "probe" `Quick test_probe;
          Alcotest.test_case "probe dead host" `Quick test_probe_dead_host;
          Alcotest.test_case "add and crash node" `Quick test_add_and_crash_node;
          Alcotest.test_case "sessions" `Quick test_sessions_mark_dead_daemons;
          Alcotest.test_case "push blacklist" `Quick test_push_blacklist;
          Alcotest.test_case "lossy deployment" `Quick test_lossy_deployment;
          Alcotest.test_case "stop and restart" `Quick test_stop_and_restart_node;
          Alcotest.test_case "two jobs coexist" `Quick test_two_jobs_coexist;
          Alcotest.test_case "job status" `Quick test_job_status;
          Alcotest.test_case "monitor emits status notes" `Quick
            test_monitor_emits_status_notes;
        ] );
    ]
