(* Tests for the live execution backend: the framed control-plane wire
   protocol (round-trips, torn reads, corrupt input), the RPC payload
   wire form, real-RSS sandbox enforcement, the sim-vs-live contract
   machinery, and a real three-daemon end-to-end deployment over
   loopback TCP. *)

open Splay_net
open Splay_runtime
open Splay_ctl
module Live = Splay_live

(* {2 Wire framing} *)

let sample_msgs =
  [
    Wire.Hello { host = 3; pid = 1234; data_port = 45678 };
    Wire.Peers { epoch = 1723111.25; peers = [ (0, 1111); (1, 2222); (2, 3333) ] };
    Wire.Deploy
      {
        job = 1;
        app = "chord";
        name = "app.1";
        port = 9000;
        position = 1;
        nodes = [ Addr.make 0 9000; Addr.make 1 9000 ];
        limits = { Sandbox.default with Sandbox.max_memory = 1 lsl 20 };
        log_level = Log.Info;
        params = [ ("m", "16"); ("lookups", "5") ];
      };
    Wire.Start { job = 1; port = 9000 };
    Wire.Stop { job = 1; port = 9000 };
    Wire.Shutdown;
    Wire.Ack { re = "deploy"; ok = false; detail = "unknown app" };
    Wire.Heartbeat
      { host = 2; rss = 4096 * 1000; mem = 100; sockets = 3; fs = 0; fibers = 7; inflight = 1 };
    Wire.Logline
      { time = 12.5; node = "app.1"; level = Log.Warn; text = "REPORT done lookups=5 ok=5" };
    Wire.Chunk { host = 0; kind = "trace"; data = "{\"ev\":\"S\"}\n"; final = true };
    Wire.Bye { host = 0 };
    Wire.App
      {
        src = Addr.make 0 9000;
        dst = Addr.make 1 9000;
        size = 52;
        payload = Codec.Assoc [ ("k", Codec.String "q"); ("rid", Codec.Int 7) ];
      };
  ]

let test_wire_roundtrip () =
  List.iter
    (fun m ->
      let m' = Wire.msg_of_value (Wire.msg_to_value m) in
      Alcotest.(check bool) "msg round-trips through its value form" true (m = m'))
    sample_msgs

let test_wire_stream () =
  (* All samples framed back to back through one decoder. *)
  let d = Wire.decoder () in
  Wire.feed_string d (String.concat "" (List.map Wire.frame_msg sample_msgs));
  let decoded = ref [] in
  let rec drain () =
    match Wire.next_msg d with
    | Some m ->
        decoded := m :: !decoded;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all frames decoded" (List.length sample_msgs) (List.length !decoded);
  Alcotest.(check bool) "in order, intact" true (List.rev !decoded = sample_msgs);
  Alcotest.(check int) "no residue" 0 (Wire.buffered d)

let test_wire_truncated () =
  (* A frame torn at every possible byte boundary is incomplete — never
     an error, never a desync: completing it always yields the
     message. *)
  let m = List.nth sample_msgs 2 (* Deploy: the largest *) in
  let s = Wire.frame_msg m in
  for cut = 0 to String.length s - 1 do
    let d = Wire.decoder () in
    Wire.feed_string d (String.sub s 0 cut);
    (match Wire.next_msg d with
    | None -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "frame complete at cut %d?" cut));
    Wire.feed_string d (String.sub s cut (String.length s - cut));
    match Wire.next_msg d with
    | Some m' -> Alcotest.(check bool) "reassembled" true (m = m')
    | None -> Alcotest.fail (Printf.sprintf "frame lost at cut %d" cut)
  done

let test_wire_garbage () =
  let rejects what s =
    let d = Wire.decoder () in
    Wire.feed_string d s;
    match Wire.next_msg d with
    | exception Codec.Parse_error _ -> ()
    | Some _ -> Alcotest.fail (what ^ ": decoded garbage")
    | None -> Alcotest.fail (what ^ ": silently swallowed")
  in
  rejects "bad magic" "XYZ\x01\x00\x00\x00\x02{}";
  rejects "bad version" "SPW\x7f\x00\x00\x00\x02{}";
  (* length far beyond max_frame *)
  rejects "absurd length" "SPW\x01\x7f\xff\xff\xff";
  (* valid header, payload that is not valid codec *)
  rejects "corrupt payload" "SPW\x01\x00\x00\x00\x04!!!!";
  (* valid codec value of the wrong shape *)
  let d = Wire.decoder () in
  Wire.feed_string d (Wire.frame_value (Codec.Assoc [ ("t", Codec.String "nonsense") ]));
  (match Wire.next_msg d with
  | exception Codec.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown tag accepted")

(* Torn reads at arbitrary boundaries never desynchronize the stream:
   whatever the chunking, the decoded sequence is the sent sequence. *)
let wire_torn_read_prop =
  let blob = String.concat "" (List.map Wire.frame_msg sample_msgs) in
  let n = String.length blob in
  QCheck.Test.make ~name:"wire: any read chunking decodes the same message sequence" ~count:200
    QCheck.(small_list (int_bound (n - 1)))
    (fun cuts ->
      let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) cuts) in
      let d = Wire.decoder () in
      let decoded = ref [] in
      let rec drain () =
        match Wire.next_msg d with
        | Some m ->
            decoded := m :: !decoded;
            drain ()
        | None -> ()
      in
      let prev = ref 0 in
      List.iter
        (fun c ->
          Wire.feed_string d (String.sub blob !prev (c - !prev));
          drain ();
          prev := c)
        (cuts @ [ n ]);
      List.rev !decoded = sample_msgs)

(* {2 RPC payload wire form} *)

(* The Request/Reply constructors are private to Rpc; exercise the wire
   form at the value level: decoding a canonical wire value and
   re-encoding it must be the identity. *)
let test_rpc_payload_roundtrip () =
  let open Codec in
  let samples =
    [
      Assoc
        [
          ("k", String "q"); ("rid", Int 12); ("proc", String "find_successor");
          ("args", List [ Int 99 ]); ("tid", Int 31); ("sid", Int 17);
        ];
      Assoc
        [
          ("k", String "q"); ("rid", Int (-1)); ("proc", String "notify"); ("args", List []);
          ("tid", Int 0); ("sid", Int 0);
        ];
      Assoc [ ("k", String "p"); ("rid", Int 12); ("ok", String "yes") ];
      Assoc [ ("k", String "p"); ("rid", Int 12); ("err", String "no route") ];
    ]
  in
  List.iter
    (fun v ->
      match Rpc.payload_to_value (Rpc.payload_of_value v) with
      | Some v' -> Alcotest.(check bool) "decode/encode is the identity" true (v = v')
      | None -> Alcotest.fail "decoded payload lost its wire form")
    samples;
  match Rpc.payload_of_value (Assoc [ ("k", String "zzz") ]) with
  | exception Codec.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown payload kind accepted"

(* {2 Real-resource sandbox enforcement} *)

let test_sandbox_rss () =
  let sb = Sandbox.create ~limits:{ Sandbox.unlimited with Sandbox.max_memory = 1 lsl 20 } () in
  let killed = ref None in
  Sandbox.set_on_kill sb (fun reason -> killed := Some reason);
  Sandbox.check_rss sb (1 lsl 19);
  Alcotest.(check bool) "under the limit: no kill" true (!killed = None);
  (match Sandbox.check_rss sb (2 lsl 20) with
  | exception Sandbox.Violation msg ->
      (* identical failure mode to the simulated alloc path *)
      Alcotest.(check string) "same message as alloc"
        (Printf.sprintf "memory limit exceeded (%d > %d bytes)" (2 lsl 20) (1 lsl 20))
        msg
  | () -> Alcotest.fail "over the limit: no violation");
  Alcotest.(check bool) "kill callback fired" true (!killed <> None)

let test_rss_sample () =
  let rss = Live.Rss.sample () in
  Alcotest.(check bool) "a real process has a positive RSS" true (rss > 0)

(* {2 Contract: report parsing and invariant diff} *)

let reports =
  [
    ("app.1", "REPORT ring id=0 succ=21845 pred=43690");
    ("app.2", "REPORT ring id=21845 succ=43690 pred=0");
    ("app.3", "REPORT ring id=43690 succ=0 pred=21845");
    ("app.1", "REPORT lookup key=1000 owner=21845 hops=1");
    ("app.1", "REPORT lookup key=50000 owner=0 hops=2");
    ("app.1", "REPORT msgs calls=9");
    ("app.1", "REPORT done lookups=2 ok=2");
    ("app.1", "this is not evidence");
  ]

let test_contract_summary () =
  let s = Live.Contract.summary_of_reports reports in
  Alcotest.(check int) "ring size" 3 (List.length s.Live.Contract.ring);
  Alcotest.(check bool) "ring sorted and intact" true
    (s.Live.Contract.ring = [ (0, 21845, 43690); (21845, 43690, 0); (43690, 0, 21845) ]);
  Alcotest.(check bool) "lookups in issue order" true
    (s.Live.Contract.lookups = [ (1000, Some (21845, 1)); (50000, Some (0, 2)) ]);
  Alcotest.(check bool) "calls" true (s.Live.Contract.calls = Some 9);
  Alcotest.(check bool) "done" true (s.Live.Contract.done_ok = Some (2, 2))

let test_contract_diff () =
  let s = Live.Contract.summary_of_reports reports in
  Alcotest.(check (list string)) "a summary matches itself" []
    (Live.Contract.diff ~sim:s ~live:s ());
  (* a live run that resolved a key to the wrong owner must be caught *)
  let bad =
    {
      s with
      Live.Contract.lookups = [ (1000, Some (43690, 1)); (50000, Some (0, 2)) ];
    }
  in
  Alcotest.(check bool) "wrong owner is a violation" true
    (Live.Contract.diff ~sim:s ~live:bad () <> []);
  (* a torn ring must be caught *)
  let torn = { s with Live.Contract.ring = [ (0, 0, 0) ] } in
  Alcotest.(check bool) "ring divergence is a violation" true
    (Live.Contract.diff ~sim:s ~live:torn () <> []);
  (* message counts: small divergence tolerated, large flagged *)
  let drift = { s with Live.Contract.calls = Some 11 } in
  Alcotest.(check (list string)) "small call-count drift tolerated" []
    (Live.Contract.diff ~sim:s ~live:drift ());
  let blowup = { s with Live.Contract.calls = Some 90 } in
  Alcotest.(check bool) "10x call blow-up is a violation" true
    (Live.Contract.diff ~sim:s ~live:blowup () <> [])

let test_contract_sim_deterministic () =
  Live.Live_apps.init ();
  let params = [ ("m", "16"); ("lookups", "5"); ("seed", "7") ] in
  let run () =
    match Live.Contract.run_sim ~seed:7 ~n:4 ~app:"chord" ~params () with
    | Ok r -> r
    | Error e -> Alcotest.fail ("sim twin failed: " ^ e)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same evidence" true (a = b);
  let s = Live.Contract.summary_of_reports a in
  Alcotest.(check int) "every instance reported its ring position" 4
    (List.length s.Live.Contract.ring);
  Alcotest.(check bool) "all lookups resolved" true (s.Live.Contract.done_ok = Some (5, 5))

(* {2 End to end: a real deployment over loopback TCP} *)

let test_live_e2e () =
  Live.Live_apps.init ();
  let splayd = "../bin/splayd.exe" in
  if not (Sys.file_exists splayd) then Alcotest.fail ("missing " ^ splayd);
  let params = [ ("m", "16"); ("lookups", "5"); ("seed", "7") ] in
  let cfg =
    {
      Live.Ctl.default_cfg with
      Live.Ctl.c_app = "chord";
      c_params = params;
      c_daemons = 3;
      c_desc =
        { Descriptor.default with Descriptor.bootstrap = Descriptor.All; nb_splayd = 3 };
      c_out_dir = "_live_e2e";
      c_splayd = splayd;
      c_trace = true;
      c_deadline = 60.0;
      c_seed = 7;
    }
  in
  let o = Live.Ctl.run cfg in
  List.iter (fun f -> Printf.printf "live failure: %s\n" f) o.Live.Ctl.r_failures;
  Alcotest.(check bool) "live run ok" true o.Live.Ctl.r_ok;
  Alcotest.(check int) "all daemons bootstrapped" 3 o.Live.Ctl.r_select.Live.Ctl.sel_alive;
  Alcotest.(check bool) "trace collected" true (o.Live.Ctl.r_trace_file <> None);
  (* the contract: live invariants match the simulated twin's *)
  let live = Live.Contract.summary_of_reports o.Live.Ctl.r_reports in
  let sim =
    match Live.Contract.run_sim ~seed:7 ~n:3 ~app:"chord" ~params () with
    | Ok r -> Live.Contract.summary_of_reports r
    | Error e -> Alcotest.fail ("sim twin failed: " ^ e)
  in
  Alcotest.(check (list string)) "zero contract violations" []
    (Live.Contract.diff ~sim ~live ());
  (* every forked daemon is gone *)
  let (_, ctl_alive), daemons = Live.Ctl.status "_live_e2e" in
  Alcotest.(check bool) "controller record is this process" true ctl_alive;
  List.iter
    (fun (host, _, alive, _) ->
      Alcotest.(check bool) (Printf.sprintf "daemon %d reaped" host) false alive)
    daemons

let () =
  Alcotest.run "live"
    [
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "stream" `Quick test_wire_stream;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
          Alcotest.test_case "garbage" `Quick test_wire_garbage;
          QCheck_alcotest.to_alcotest wire_torn_read_prop;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "rpc payload wire form" `Quick test_rpc_payload_roundtrip;
          Alcotest.test_case "sandbox rss" `Quick test_sandbox_rss;
          Alcotest.test_case "rss sample" `Quick test_rss_sample;
        ] );
      ( "contract",
        [
          Alcotest.test_case "summary" `Quick test_contract_summary;
          Alcotest.test_case "diff" `Quick test_contract_diff;
          Alcotest.test_case "sim twin deterministic" `Quick test_contract_sim_deterministic;
        ] );
      ("e2e", [ Alcotest.test_case "three daemons over loopback" `Quick test_live_e2e ]);
    ]
