(* Tests for the network substrate: transit-stub topology, testbed host
   models, packet transport with bandwidth queues. *)

open Splay_sim
open Splay_net

type Net.payload += Probe of int

(* {2 Topology} *)

let test_topology_shape () =
  let rng = Rng.create 1 in
  let topo = Topology.transit_stub rng in
  Alcotest.(check int) "500 routers by default" 500 (Topology.router_count topo);
  Alcotest.(check int) "490 stubs" 490 (Array.length (Topology.stub_routers topo))

let test_topology_delays () =
  let rng = Rng.create 2 in
  let topo = Topology.transit_stub ~transits:4 ~stubs_per_transit:3 rng in
  let stubs = Topology.stub_routers topo in
  (* matrix access goes through the Latency signature; routers play the
     host ids directly *)
  let lat = Latency.matrix topo ~stub_of:Fun.id in
  (* same stub: intra-stub delay *)
  Alcotest.(check (float 1e-9)) "intra-stub" (Topology.intra_stub_delay topo)
    (Latency.delay lat stubs.(0) stubs.(0));
  (* sibling stubs under the same transit: 2 x stub-transit one-way = 30 ms *)
  Alcotest.(check (float 1e-9)) "stub-stub same domain" 0.030
    (Latency.delay lat stubs.(0) stubs.(1));
  (* delays are symmetric and satisfy the triangle inequality on a sample *)
  let d a b = Latency.delay lat a b in
  Array.iter
    (fun s1 ->
      Array.iter
        (fun s2 ->
          Alcotest.(check (float 1e-9)) "symmetric" (d s1 s2) (d s2 s1);
          Array.iter
            (fun s3 ->
              Alcotest.(check bool) "triangle" true (d s1 s3 <= d s1 s2 +. d s2 s3 +. 1e-9))
            stubs)
        stubs)
    stubs

let test_topology_long_paths_cost_more () =
  let rng = Rng.create 3 in
  let topo = Topology.transit_stub rng in
  let stubs = Topology.stub_routers topo in
  let lat = Latency.matrix topo ~stub_of:Fun.id in
  (* crossing transits costs at least stub-transit + transit-transit hops *)
  let same = Latency.delay lat stubs.(0) stubs.(1) in
  (* find a pair on different transits: delays differ from the local one *)
  let far =
    Array.fold_left
      (fun acc s -> Float.max acc (Latency.delay lat stubs.(0) s))
      0.0 stubs
  in
  Alcotest.(check bool) "remote stubs cost more than local" true (far > same)

(* {2 Testbed} *)

let test_testbed_kinds () =
  let rng = Rng.create 4 in
  let pl = Testbed.planetlab ~n:10 rng in
  Alcotest.(check int) "pl size" 10 (Testbed.size pl);
  let mn = Testbed.modelnet ~hosts:20 rng in
  Alcotest.(check int) "mn size" 20 (Testbed.size mn);
  let cl = Testbed.cluster rng in
  Alcotest.(check int) "default cluster is the paper's 11 nodes" 11 (Testbed.size cl);
  let mixed = Testbed.mixed ~planetlab:5 ~modelnet:5 rng in
  Alcotest.(check int) "mixed size" 10 (Testbed.size mixed);
  Alcotest.(check bool) "mixed kinds" true
    ((Testbed.host mixed 0).Testbed.kind = Testbed.Planetlab
    && (Testbed.host mixed 9).Testbed.kind = Testbed.Modelnet)

let test_testbed_latency_ordering () =
  let rng = Rng.create 5 in
  let cl = Testbed.cluster rng in
  let pl = Testbed.planetlab ~n:10 rng in
  Alcotest.(check bool) "LAN is sub-millisecond" true (Testbed.base_delay cl 0 1 < 0.001);
  Alcotest.(check bool) "WAN is milliseconds" true (Testbed.base_delay pl 0 1 > 0.002);
  (* base delay is stable, the jittered delay varies around it *)
  Alcotest.(check (float 1e-12)) "base stable" (Testbed.base_delay pl 0 1)
    (Testbed.base_delay pl 0 1);
  let jittered = List.init 20 (fun _ -> Testbed.delay pl 0 1) in
  Alcotest.(check bool) "jitter varies" true
    (List.exists (fun d -> not (Float.equal d (List.hd jittered))) jittered)

let test_testbed_extra_host () =
  let rng = Rng.create 6 in
  let tb, ctl = Testbed.with_extra_host (Testbed.planetlab ~n:5 rng) in
  Alcotest.(check int) "appended last" 5 ctl;
  Alcotest.(check int) "size grew" 6 (Testbed.size tb);
  Alcotest.(check bool) "controller host is LAN-class" true
    ((Testbed.host tb ctl).Testbed.kind = Testbed.Cluster)

let test_service_delay_positive () =
  let rng = Rng.create 7 in
  let pl = Testbed.planetlab ~n:5 rng in
  for h = 0 to 4 do
    for _ = 1 to 20 do
      Alcotest.(check bool) "service delay >= 0" true (Testbed.service_delay pl h >= 0.0)
    done
  done

(* {2 Net} *)

let with_net ?(n = 4) kind f =
  let eng = Engine.create ~seed:8 () in
  let tb =
    match kind with
    | `Cluster -> Testbed.cluster ~n (Engine.rng eng)
    | `Modelnet bw -> Testbed.modelnet ~hosts:n ~bandwidth:bw (Engine.rng eng)
  in
  let net = Net.create eng tb in
  f eng net

let test_net_delivery () =
  with_net `Cluster (fun eng net ->
      let got = ref [] in
      Net.bind net (Addr.make 1 9) (fun ~src payload ->
          match payload with
          | Probe k -> got := (src.Addr.host, k, Engine.now eng) :: !got
          | _ -> ());
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 7);
      ignore (Engine.run eng);
      match !got with
      | [ (0, 7, t) ] -> Alcotest.(check bool) "delivered after positive delay" true (t > 0.0)
      | _ -> Alcotest.fail "expected exactly one delivery")

let test_net_unbound_drops () =
  with_net `Cluster (fun eng net ->
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 1);
      ignore (Engine.run eng);
      Alcotest.(check int) "dropped" 1 (Net.messages_dropped net);
      Alcotest.(check int) "sent counter" 1 (Net.messages_sent net))

let test_net_down_host () =
  with_net `Cluster (fun eng net ->
      let got = ref 0 in
      Net.bind net (Addr.make 1 9) (fun ~src:_ _ -> incr got);
      Net.set_host_up net 1 false;
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 1);
      ignore (Engine.run eng);
      Alcotest.(check int) "nothing delivered to a dead host" 0 !got;
      Net.set_host_up net 1 true;
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 2);
      ignore (Engine.run eng);
      Alcotest.(check int) "delivered after restart" 1 !got;
      (* sender down: silently dropped too *)
      Net.set_host_up net 0 false;
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 3);
      ignore (Engine.run eng);
      Alcotest.(check int) "dead sender drops" 1 !got)

let test_net_loss () =
  with_net `Cluster (fun eng net ->
      let got = ref 0 in
      Net.bind net (Addr.make 1 9) (fun ~src:_ _ -> incr got);
      Net.set_loss net 0.5;
      for _ = 1 to 200 do
        Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 0)
      done;
      ignore (Engine.run eng);
      Alcotest.(check bool)
        (Printf.sprintf "roughly half delivered (%d/200)" !got)
        true
        (!got > 60 && !got < 140);
      (* per-message override beats the global setting *)
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) ~loss:0.0 (Probe 1);
      let before = !got in
      ignore (Engine.run eng);
      Alcotest.(check int) "loss:0 always delivers" (before + 1) !got)

let test_net_bandwidth_serializes () =
  (* two 1 MB messages on a 1 Mbps link: store-and-forward pays the
     transmission twice (uplink then downlink), so the first arrives ~16 s
     in; the second is serialized ~8 s behind it *)
  let mbps = 1_000_000.0 /. 8.0 in
  with_net (`Modelnet mbps) (fun eng net ->
      let arrivals = ref [] in
      Net.bind net (Addr.make 1 9) (fun ~src:_ _ -> arrivals := Engine.now eng :: !arrivals);
      let size = 1_000_000 in
      Net.send net ~size ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 1);
      Net.send net ~size ~src:(Addr.make 0 1) ~dst:(Addr.make 1 9) (Probe 2);
      ignore (Engine.run eng);
      match List.rev !arrivals with
      | [ t1; t2 ] ->
          Alcotest.(check bool) "first takes ~16s" true (t1 > 15.9 && t1 < 18.0);
          Alcotest.(check bool) "second serialized behind it" true (t2 -. t1 > 7.0)
      | _ -> Alcotest.fail "expected two arrivals")

let test_net_partition () =
  with_net ~n:4 `Cluster (fun eng net ->
      let got = ref 0 in
      Net.bind net (Addr.make 2 9) (fun ~src:_ _ -> incr got);
      Net.set_partition net (fun h -> if h < 2 then 0 else 1);
      Alcotest.(check bool) "cross blocked" true (Net.partitioned net 0 2);
      Alcotest.(check bool) "same side open" false (Net.partitioned net 2 3);
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 2 9) (Probe 1);
      Net.send net ~src:(Addr.make 3 1) ~dst:(Addr.make 2 9) (Probe 2);
      ignore (Engine.run eng);
      Alcotest.(check int) "only the same-side message arrived" 1 !got;
      Net.clear_partition net;
      Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 2 9) (Probe 3);
      ignore (Engine.run eng);
      Alcotest.(check int) "healed" 2 !got)

let test_net_bind_conflicts () =
  with_net `Cluster (fun _ net ->
      Net.bind net (Addr.make 0 5) (fun ~src:_ _ -> ());
      Alcotest.check_raises "double bind" (Invalid_argument "Net.bind: 0:5 already bound")
        (fun () -> Net.bind net (Addr.make 0 5) (fun ~src:_ _ -> ()));
      Net.unbind net (Addr.make 0 5);
      Net.bind net (Addr.make 0 5) (fun ~src:_ _ -> ());
      Alcotest.(check bool) "rebound" true (Net.is_bound net (Addr.make 0 5)))

let test_net_rtt_estimate () =
  with_net `Cluster (fun _ net ->
      Alcotest.(check bool) "rtt positive" true (Net.base_rtt net 0 1 > 0.0);
      Alcotest.(check (float 1e-12)) "rtt symmetric" (Net.base_rtt net 0 1) (Net.base_rtt net 1 0))

(* {2 Latency} *)

(* the retired direct matrix entry point, kept callable here to pin the
   Latency.matrix backend byte-identical to it *)
module Topology_direct = struct
  [@@@ocaml.alert "-deprecated"]

  let delay = Topology.delay
end

let prop_latency_symmetric_deterministic =
  QCheck.Test.make ~name:"synthetic latency is symmetric and seed-deterministic" ~count:500
    QCheck.(triple (int_bound 10_000) (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, a, b) ->
      let l1 = Latency.synthetic ~seed () in
      let l2 = Latency.synthetic ~seed () in
      let d = Latency.delay l1 a b in
      d >= 0.0
      && Float.equal d (Latency.delay l1 b a)
      && Float.equal d (Latency.delay l2 a b))

let prop_latency_uniform_range =
  QCheck.Test.make ~name:"uniform RTT maps every pair into [lo/2, hi/2)" ~count:500
    QCheck.(pair (int_bound 10_000) (int_bound 1_000_000))
    (fun (seed, a) ->
      let lo = 0.02 and hi = 0.2 in
      let l = Latency.synthetic ~dist:(Latency.Uniform { lo; hi }) ~seed () in
      let d = Latency.delay l a (a + 1) in
      d >= lo /. 2.0 && d < hi /. 2.0)

let test_latency_uniform_mean () =
  (* hash draws are uniform: the sample mean over many pairs must sit
     near the distribution mean, (lo+hi)/2 RTT = (lo+hi)/4 one-way *)
  let lo = 0.02 and hi = 0.2 in
  let l = Latency.synthetic ~dist:(Latency.Uniform { lo; hi }) ~seed:42 () in
  let n = 20_000 in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    sum := !sum +. Latency.delay l i (i + 1_000_000)
  done;
  let mean = !sum /. Float.of_int n in
  let expect = (lo +. hi) /. 4.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f within 5%% of %.4f" mean expect)
    true
    (Float.abs (mean -. expect) < 0.05 *. expect)

let test_latency_constant_and_intra () =
  let l = Latency.synthetic ~dist:(Latency.Constant 0.08) ~intra_host:1e-4 ~seed:9 () in
  Alcotest.(check (float 1e-12)) "every pair at RTT/2" 0.04 (Latency.delay l 3 900_000);
  Alcotest.(check (float 1e-12)) "self at intra_host" 1e-4 (Latency.delay l 5 5)

let test_latency_classes_weights () =
  (* a 50/50 two-class mixture: observed class fractions near the weights *)
  let l =
    Latency.synthetic
      ~dist:(Latency.Classes [| (0.5, 0.02); (0.5, 0.1) |])
      ~seed:17 ()
  in
  let n = 10_000 in
  let fast = ref 0 in
  for i = 0 to n - 1 do
    if Latency.delay l i (i + 500_000) < 0.03 then incr fast
  done;
  let frac = Float.of_int !fast /. Float.of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "fast-class fraction %.3f near 0.5" frac)
    true
    (Float.abs (frac -. 0.5) < 0.05)

let test_latency_matrix_equals_topology () =
  let rng = Rng.create 21 in
  let topo = Topology.transit_stub ~transits:4 ~stubs_per_transit:3 rng in
  let stubs = Topology.stub_routers topo in
  let lat = Latency.matrix topo ~stub_of:Fun.id in
  Array.iter
    (fun s1 ->
      Array.iter
        (fun s2 ->
          Alcotest.(check (float 0.0))
            "matrix backend byte-identical to direct access"
            (Topology_direct.delay topo s1 s2) (Latency.delay lat s1 s2))
        stubs)
    stubs

let test_testbed_synthetic_end_to_end () =
  (* the compact backend drives a real delivery: hash-seeded delays in,
     message out, and base_delay answers stay stable and symmetric *)
  let eng = Engine.create ~seed:33 () in
  let tb = Testbed.synthetic ~hosts:100_000 (Engine.rng eng) in
  Alcotest.(check int) "size" 100_000 (Testbed.size tb);
  Alcotest.(check (float 1e-12)) "base delay stable"
    (Testbed.base_delay tb 0 99_999) (Testbed.base_delay tb 0 99_999);
  Alcotest.(check (float 1e-12)) "base delay symmetric"
    (Testbed.base_delay tb 0 99_999) (Testbed.base_delay tb 99_999 0);
  let net = Net.create eng tb in
  let got = ref [] in
  Net.bind net (Addr.make 99_999 9) (fun ~src payload ->
      match payload with
      | Probe k -> got := (src.Addr.host, k, Engine.now eng) :: !got
      | _ -> ());
  Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make 99_999 9) (Probe 5);
  ignore (Engine.run eng);
  match !got with
  | [ (0, 5, t) ] -> Alcotest.(check bool) "delivered after positive delay" true (t > 0.0)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_latency_of_fn () =
  (* wrap replayed measurement data: the model answers exactly what the
     function says and carries the given identity *)
  let grid a b = 0.001 *. Float.of_int (abs (a - b) mod 50) in
  let l = Latency.of_fn ~name:"grid" ~seed:5 grid in
  Alcotest.(check string) "name" "grid" (Latency.name l);
  Alcotest.(check int) "seed" 5 (Latency.seed l);
  for i = 0 to 100 do
    let a = i * 37 and b = i * 91 in
    Alcotest.(check (float 0.0)) "delay is the function's answer" (grid a b)
      (Latency.delay l a b)
  done;
  let l0 = Latency.of_fn ~name:"flat" (fun _ _ -> 0.01) in
  Alcotest.(check int) "seed defaults to 0" 0 (Latency.seed l0);
  (* an of_fn model drives a synthetic testbed like any other backend *)
  let eng = Engine.create ~seed:41 () in
  let tb = Testbed.synthetic ~latency:l ~hosts:1_000 (Engine.rng eng) in
  Alcotest.(check (float 1e-12)) "testbed answers through the fn" (grid 3 903)
    (Testbed.base_delay tb 3 903)

let test_synthetic_down_up_at_scale () =
  (* host down/up on the compact struct-of-arrays testbed, at a size where
     per-host records would be prohibitive: sends to (or from) a down host
     drop silently, restart resumes delivery, and the one-bit state never
     materialises host records *)
  let n = 50_000 in
  let eng = Engine.create ~seed:34 () in
  let tb = Testbed.synthetic ~hosts:n (Engine.rng eng) in
  let net = Net.create eng tb in
  let last = n - 1 in
  let got = ref 0 in
  Net.bind net (Addr.make last 9) (fun ~src:_ _ -> incr got);
  Testbed.set_host_up tb last false;
  Alcotest.(check bool) "down visible through the testbed" false (Testbed.host_up tb last);
  Alcotest.(check bool) "down visible through the net" false (Net.host_up net last);
  Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make last 9) (Probe 1);
  ignore (Engine.run eng);
  Alcotest.(check int) "nothing delivered while down" 0 !got;
  Net.set_host_up net last true;
  Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make last 9) (Probe 2);
  ignore (Engine.run eng);
  Alcotest.(check int) "delivery resumes after restart" 1 !got;
  (* a down *sender* drops too *)
  Net.set_host_up net 0 false;
  Net.send net ~src:(Addr.make 0 1) ~dst:(Addr.make last 9) (Probe 3);
  ignore (Engine.run eng);
  Alcotest.(check int) "dead sender drops" 1 !got;
  Net.set_host_up net 0 true;
  (* independence: downing one host leaves a spot-check of others up *)
  Testbed.set_host_up tb 777 false;
  List.iter
    (fun h -> Alcotest.(check bool) "other hosts unaffected" true (Testbed.host_up tb h))
    [ 0; 776; 778; last ];
  Testbed.set_host_up tb 777 true;
  (* still no per-host records behind any of this *)
  match Testbed.host tb 777 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "synthetic testbed unexpectedly materialised host records"

let latency_qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_latency_symmetric_deterministic; prop_latency_uniform_range ]

let () =
  Alcotest.run "splay_net"
    [
      ( "topology",
        [
          Alcotest.test_case "shape" `Quick test_topology_shape;
          Alcotest.test_case "delays" `Quick test_topology_delays;
          Alcotest.test_case "long paths" `Quick test_topology_long_paths_cost_more;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "kinds" `Quick test_testbed_kinds;
          Alcotest.test_case "latency ordering" `Quick test_testbed_latency_ordering;
          Alcotest.test_case "extra host" `Quick test_testbed_extra_host;
          Alcotest.test_case "service delay" `Quick test_service_delay_positive;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "unbound drops" `Quick test_net_unbound_drops;
          Alcotest.test_case "down host" `Quick test_net_down_host;
          Alcotest.test_case "loss" `Quick test_net_loss;
          Alcotest.test_case "bandwidth serializes" `Quick test_net_bandwidth_serializes;
          Alcotest.test_case "partition" `Quick test_net_partition;
          Alcotest.test_case "bind conflicts" `Quick test_net_bind_conflicts;
          Alcotest.test_case "rtt estimate" `Quick test_net_rtt_estimate;
        ] );
      ( "latency",
        [
          Alcotest.test_case "uniform mean" `Quick test_latency_uniform_mean;
          Alcotest.test_case "constant and intra-host" `Quick test_latency_constant_and_intra;
          Alcotest.test_case "class weights" `Quick test_latency_classes_weights;
          Alcotest.test_case "matrix = topology" `Quick test_latency_matrix_equals_topology;
          Alcotest.test_case "of_fn" `Quick test_latency_of_fn;
          Alcotest.test_case "synthetic testbed end to end" `Quick
            test_testbed_synthetic_end_to_end;
          Alcotest.test_case "synthetic down/up at scale" `Quick test_synthetic_down_up_at_scale;
        ]
        @ latency_qsuite );
    ]
