(* Tests for the offline trace analyzer: the line parser (escapes, foreign
   lines), DAG reconstruction, and a hand-built trace whose critical path
   and per-hop self times are known exactly. *)

module Ta = Splay_obs.Trace_analysis
module Obs = Splay_obs.Obs

(* Root spans 0..10; child a [1,3], child b [3,9] with grandchild c
   [4,8.5]; a P event, an L record, a metrics line, a span never closed.
   Critical path: root -> b (finishes at 9 > a's 3) -> c.
   Self times: root 10-6=4, b 6-4.5=1.5, c 4.5. *)
let fixture =
  String.concat "\n"
    [
      {|{"t":0.000000,"ev":"B","sid":1,"tid":1,"pid":0,"name":"root","node":"n0"}|};
      {|{"t":1.000000,"ev":"B","sid":2,"tid":1,"pid":1,"name":"a","src":"n1"}|};
      {|{"t":2.000000,"ev":"L","node":"n1","level":"info","msg":"hi"}|};
      {|{"t":2.500000,"ev":"P","tid":1,"pid":2,"name":"ping"}|};
      {|{"t":3.000000,"ev":"E","sid":2}|};
      {|{"t":3.000000,"ev":"B","sid":3,"tid":1,"pid":1,"name":"b","node":"n2"}|};
      {|{"t":4.000000,"ev":"B","sid":4,"tid":1,"pid":3,"name":"c","dst":"n3"}|};
      {|{"metric":"engine.events","type":"counter","value":5}|};
      {|{"t":8.500000,"ev":"E","sid":4,"outcome":"ok"}|};
      {|{"t":9.000000,"ev":"E","sid":3}|};
      {|{"t":5.000000,"ev":"B","sid":5,"tid":2,"pid":0,"name":"crashed"}|};
      {|{"t":10.000000,"ev":"E","sid":1}|};
    ]

let load_fixture () = Ta.load fixture

let test_load () =
  let t = load_fixture () in
  Alcotest.(check int) "five spans" 5 (List.length t.Ta.spans);
  Alcotest.(check int) "two roots" 2 (List.length t.Ta.roots);
  Alcotest.(check int) "one P event" 1 (List.length t.Ta.events);
  Alcotest.(check int) "one L record" 1 t.Ta.logs;
  let root = Hashtbl.find t.Ta.by_sid 1 in
  Alcotest.(check (list string)) "children in begin order" [ "a"; "b" ]
    (List.map (fun sp -> sp.Ta.name) root.Ta.children);
  let c = Hashtbl.find t.Ta.by_sid 4 in
  Alcotest.(check (float 1e-9)) "duration from B/E" 4.5 (Ta.duration c);
  Alcotest.(check (option string)) "finish attrs merged" (Some "ok") (Ta.attr c "outcome");
  (* node_of fallback order: node, then src, then dst *)
  Alcotest.(check string) "node attr" "n2" (Ta.node_of (Hashtbl.find t.Ta.by_sid 3));
  Alcotest.(check string) "src fallback" "n1" (Ta.node_of (Hashtbl.find t.Ta.by_sid 2));
  Alcotest.(check string) "dst fallback" "n3" (Ta.node_of c);
  (* the never-closed span is clamped to the last timestamp seen *)
  let crashed = Hashtbl.find t.Ta.by_sid 5 in
  Alcotest.(check bool) "unclosed flagged" false crashed.Ta.closed;
  Alcotest.(check (float 1e-9)) "unclosed clamped to trace end" 5.0 (Ta.duration crashed)

let test_critical_path () =
  let t = load_fixture () in
  let root = Hashtbl.find t.Ta.by_sid 1 in
  let path = Ta.critical_path root in
  Alcotest.(check (list string)) "follows the latest finisher" [ "root"; "b"; "c" ]
    (List.map (fun sp -> sp.Ta.name) path);
  let selfs = List.map snd (Ta.self_times path) in
  Alcotest.(check (list (float 1e-9))) "per-hop self times" [ 4.0; 1.5; 4.5 ] selfs;
  (* total self time accounts for the root's whole duration *)
  Alcotest.(check (float 1e-9)) "self times sum to root duration" (Ta.duration root)
    (List.fold_left ( +. ) 0.0 selfs)

let test_slowest_root () =
  let t = load_fixture () in
  (match Ta.slowest_root t with
  | Some sp -> Alcotest.(check string) "longest root wins" "root" sp.Ta.name
  | None -> Alcotest.fail "no root");
  (match Ta.slowest_root ~name:"crashed" t with
  | Some sp -> Alcotest.(check int) "named lookup" 5 sp.Ta.sid
  | None -> Alcotest.fail "named root not found");
  Alcotest.(check bool) "unknown name is None" true (Ta.slowest_root ~name:"nope" t = None);
  (* rpc.call roots are preferred over longer infrastructure roots *)
  let t2 =
    Ta.load
      (String.concat "\n"
         [
           {|{"t":0.0,"ev":"B","sid":1,"tid":1,"pid":0,"name":"housekeeping"}|};
           {|{"t":100.0,"ev":"E","sid":1}|};
           {|{"t":1.0,"ev":"B","sid":2,"tid":2,"pid":0,"name":"rpc.call","proc":"get"}|};
           {|{"t":6.0,"ev":"E","sid":2,"outcome":"ok"}|};
         ])
  in
  match Ta.slowest_root t2 with
  | Some sp -> Alcotest.(check string) "rpc.call preferred" "rpc.call" sp.Ta.name
  | None -> Alcotest.fail "no root in t2"

let test_parser_escapes () =
  let t =
    Ta.load
      {|{"t":1.0,"ev":"B","sid":1,"tid":1,"pid":0,"name":"q\"\\\n\tAz","k":"v\/w"}|}
  in
  match t.Ta.spans with
  | [ sp ] ->
      Alcotest.(check string) "escapes decoded" "q\"\\\n\tAz" sp.Ta.name;
      Alcotest.(check (option string)) "solidus escape" (Some "v/w") (Ta.attr sp "k")
  | _ -> Alcotest.fail "expected one span"

(* The analyzer must accept whatever the writer emits: round-trip a trace
   through Obs and recover structure and attributes exactly. *)
let test_round_trip () =
  Obs.reset ();
  Obs.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Obs.enabled := false;
      Obs.reset ())
    (fun () ->
      let outer = Obs.span ~attrs:[ ("msg", "line1\nline2\ttab \"quoted\"") ] "outer" in
      let inner = Obs.span "inner" in
      Obs.event ~attrs:[ ("n", "1") ] "tick";
      Obs.finish inner;
      Obs.finish ~attrs:[ ("outcome", "ok") ] outer;
      let t = Ta.load (Obs.trace_jsonl ()) in
      Alcotest.(check int) "two spans" 2 (List.length t.Ta.spans);
      Alcotest.(check int) "one root" 1 (List.length t.Ta.roots);
      let o = List.hd t.Ta.roots in
      Alcotest.(check string) "root name" "outer" o.Ta.name;
      Alcotest.(check (option string)) "control characters survive"
        (Some "line1\nline2\ttab \"quoted\"") (Ta.attr o "msg");
      Alcotest.(check (option string)) "finish attr merged" (Some "ok") (Ta.attr o "outcome");
      match (o.Ta.children, t.Ta.events) with
      | [ i ], [ ev ] ->
          Alcotest.(check string) "child linked" "inner" i.Ta.name;
          Alcotest.(check int) "event inside the inner span" i.Ta.sid ev.Ta.ev_pid
      | _ -> Alcotest.fail "expected one child and one event")

(* Smoke: the printers run on the fixture without raising (their output is
   eyeballed via `splay trace`; here we only pin that they don't crash and
   that the critical path printer names the path members). *)
let test_printers () =
  let t = load_fixture () in
  Ta.print_summary t;
  Ta.print_critical_path t;
  let empty = Ta.load "" in
  Ta.print_summary empty;
  Ta.print_critical_path empty

let () =
  Alcotest.run "splay_trace_analysis"
    [
      ( "analysis",
        [
          Alcotest.test_case "load" `Quick test_load;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "slowest root" `Quick test_slowest_root;
          Alcotest.test_case "parser escapes" `Quick test_parser_escapes;
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "printers" `Quick test_printers;
        ] );
    ]
