(* Tests for the statistics substrate: sample distributions, time series,
   report rendering. *)

open Splay_stats

let feed xs =
  let d = Dist.create () in
  Dist.add_list d xs;
  d

(* {2 Dist} *)

let test_dist_basic () =
  let d = feed [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check int) "count" 3 (Dist.count d);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Dist.mean d);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Dist.min_value d);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Dist.max_value d);
  Alcotest.(check bool) "not empty" false (Dist.is_empty d)

let test_dist_empty () =
  let d = Dist.create () in
  Alcotest.(check bool) "empty" true (Dist.is_empty d);
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Dist.mean d);
  Alcotest.check_raises "percentile of empty" (Invalid_argument "Dist.percentile: empty")
    (fun () -> ignore (Dist.percentile d 50.0))

let test_dist_percentiles () =
  let d = feed (List.init 101 (fun i -> Float.of_int i)) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Dist.percentile d 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Dist.percentile d 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Dist.percentile d 100.0);
  Alcotest.(check (float 1e-9)) "p25" 25.0 (Dist.percentile d 25.0);
  (* interpolation between order statistics *)
  let d2 = feed [ 0.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "interpolated" 5.0 (Dist.percentile d2 50.0)

let test_dist_add_after_query () =
  (* querying sorts; adding afterwards must keep results correct *)
  let d = feed [ 5.0; 1.0 ] in
  ignore (Dist.percentile d 50.0);
  Dist.add d 0.0;
  Alcotest.(check (float 1e-9)) "min after new add" 0.0 (Dist.min_value d);
  Alcotest.(check int) "count" 3 (Dist.count d)

let test_dist_cdf () =
  let d = feed [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "cdf points"
    [ (0.5, 0.0); (2.0, 0.5); (10.0, 1.0) ]
    (Dist.cdf d ~points:[ 0.5; 2.0; 10.0 ])

let test_dist_histogram_pdf () =
  let d = feed [ 0.1; 0.2; 1.5; 2.5; 2.6; 9.9; -5.0; 50.0 ] in
  let h = Dist.histogram d ~bins:10 ~lo:0.0 ~hi:10.0 in
  Alcotest.(check int) "bins" 10 (Array.length h);
  let total = Array.fold_left (fun a (_, c) -> a + c) 0 h in
  Alcotest.(check int) "out-of-range clamped into edges" 8 total;
  let _, c0 = h.(0) in
  Alcotest.(check int) "first bin holds clamped low" 3 c0;
  let pdf = Dist.pdf d ~bins:10 ~lo:0.0 ~hi:10.0 in
  let mass = Array.fold_left (fun a (_, p) -> a +. p) 0.0 pdf in
  Alcotest.(check (float 1e-6)) "pdf sums to 100%" 100.0 mass

let test_dist_stddev_merge () =
  let d = feed [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "known stddev" 2.0 (Dist.stddev d);
  let m = Dist.merge d (feed [ 100.0 ]) in
  Alcotest.(check int) "merged count" 9 (Dist.count m);
  Alcotest.(check (float 1e-9)) "merged max" 100.0 (Dist.max_value m)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let d = feed xs in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vs = Dist.percentiles d ps in
      let rec mono = function a :: (b :: _ as r) -> a <= b && mono r | _ -> true in
      mono vs)

let prop_cdf_bounds =
  QCheck.Test.make ~name:"cdf between 0 and 1, reaches 1 at max" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let d = feed xs in
      let _, at_max = List.hd (Dist.cdf d ~points:[ Dist.max_value d ]) in
      at_max = 1.0
      && List.for_all
           (fun (_, f) -> f >= 0.0 && f <= 1.0)
           (Dist.cdf d ~points:[ -1000.0; 0.0; 1000.0 ]))

(* {2 Series} *)

let test_series_binning () =
  let s = Series.create ~bin_width:10.0 in
  Series.add s ~time:1.0 5.0;
  Series.add s ~time:9.9 7.0;
  Series.add s ~time:10.0 100.0;
  Series.add s ~time:35.0 1.0;
  let bins = Series.bins s in
  Alcotest.(check int) "three non-empty bins" 3 (List.length bins);
  Alcotest.(check (list (float 1e-9))) "edges" [ 0.0; 10.0; 30.0 ] (List.map fst bins);
  (match Series.bin_at s 5.0 with
  | Some d -> Alcotest.(check int) "first bin has two samples" 2 (Dist.count d)
  | None -> Alcotest.fail "bin missing");
  Alcotest.(check (option (float 1e-9))) "span" (Some 0.0)
    (Option.map fst (Series.span s))

let test_series_percentile_series () =
  let s = Series.create ~bin_width:60.0 in
  List.iter (fun v -> Series.add s ~time:30.0 v) [ 1.0; 2.0; 3.0 ];
  List.iter (fun v -> Series.add s ~time:90.0 v) [ 10.0; 20.0 ];
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "medians" [ (0.0, 2.0); (60.0, 15.0) ]
    (Series.percentile_series s 50.0);
  Alcotest.(check (list (pair (float 1e-9) int))) "counts" [ (0.0, 3); (60.0, 2) ]
    (Series.count_series s)

let test_series_counter () =
  let c = Series.Counter.create ~bin_width:60.0 in
  Series.Counter.incr c ~time:10.0;
  Series.Counter.incr c ~time:50.0;
  Series.Counter.add c ~time:70.0 5;
  Alcotest.(check int) "bin 0" 2 (Series.Counter.get c ~time:30.0);
  Alcotest.(check int) "bin 1" 5 (Series.Counter.get c ~time:119.0);
  Alcotest.(check int) "empty bin" 0 (Series.Counter.get c ~time:1000.0);
  Alcotest.(check (list (pair (float 1e-9) int))) "series" [ (0.0, 2); (60.0, 5) ]
    (Series.Counter.series c)

(* {2 Report} *)

let test_report_cells () =
  Alcotest.(check string) "default decimals" "3.14" (Report.float_cell 3.14159);
  Alcotest.(check string) "custom decimals" "3.1" (Report.float_cell ~decimals:1 3.14159);
  Alcotest.(check (list string)) "percentile header" [ "p5"; "p50"; "p99.9" ]
    (Report.percentile_header [ 5.0; 50.0; 99.9 ])

let test_report_bar () =
  Alcotest.(check string) "full" "##########" (Report.bar 10.0 ~max:10.0 ~width:10);
  Alcotest.(check string) "half" "#####" (Report.bar 5.0 ~max:10.0 ~width:10);
  Alcotest.(check string) "zero" "" (Report.bar 0.0 ~max:10.0 ~width:10);
  Alcotest.(check string) "clamped" "##########" (Report.bar 99.0 ~max:10.0 ~width:10);
  Alcotest.(check string) "zero max" "" (Report.bar 5.0 ~max:0.0 ~width:10)


(* {2 Summary (Welford)} *)

let test_summary_matches_dist () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  let s = Summary.create () in
  List.iter (Summary.add s) xs;
  let d = feed xs in
  Alcotest.(check int) "count" (Dist.count d) (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" (Dist.mean d) (Summary.mean s);
  Alcotest.(check (float 1e-9)) "stddev" (Dist.stddev d) (Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" (Dist.min_value d) (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" (Dist.max_value d) (Summary.max_value s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" 0.0 (Summary.variance s);
  Alcotest.check_raises "min" (Invalid_argument "Summary.min_value: empty") (fun () ->
      ignore (Summary.min_value s))

let prop_summary_merge =
  QCheck.Test.make ~name:"merged summary = summary of concatenation" ~count:300
    QCheck.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let sa = Summary.create () and sb = Summary.create () and s_all = Summary.create () in
      List.iter (Summary.add sa) xs;
      List.iter (Summary.add sb) ys;
      List.iter (Summary.add s_all) (xs @ ys);
      let m = Summary.merge sa sb in
      let close a b = Float.abs (a -. b) < 1e-6 *. (1.0 +. Float.abs a) in
      Summary.count m = Summary.count s_all
      && close (Summary.mean m) (Summary.mean s_all)
      && close (Summary.variance m) (Summary.variance s_all))

(* {2 Sink — exact and sketch backends} *)

let sink_feed s xs = List.iter (Sink.add s) xs

(* Streams chosen to stress a reservoir: already sorted (late samples are
   the extremes), reverse sorted, all-ties, and a spike mixture where a
   rare huge value dominates the range. *)
let adversarial_streams n =
  [
    ("sorted", List.init n Float.of_int);
    ("reverse", List.init n (fun i -> Float.of_int (n - i)));
    ("constant", List.init n (fun _ -> 42.0));
    ("spike", List.init n (fun i -> if i mod 100 = 0 then 1e9 else 1.0));
  ]

let test_sink_exact_matches_dist () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  let s = Sink.exact () and d = feed xs in
  sink_feed s xs;
  Alcotest.(check int) "count" (Dist.count d) (Sink.count s);
  Alcotest.(check (float 1e-9)) "mean" (Dist.mean d) (Sink.mean s);
  Alcotest.(check (float 1e-9)) "stddev" (Dist.stddev d) (Sink.stddev s);
  Alcotest.(check (float 1e-9)) "p50" (Dist.percentile d 50.0) (Sink.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p90" (Dist.percentile d 90.0) (Sink.percentile s 90.0)

let test_sink_sketch_moments_exact () =
  (* count / mean / min / max are tracked outside the reservoir, so they
     must be exact on every stream no matter what got sampled away *)
  List.iter
    (fun (name, xs) ->
      let e = Sink.exact () and k = Sink.sketch ~capacity:256 ~seed:7 () in
      sink_feed e xs;
      sink_feed k xs;
      Alcotest.(check int) (name ^ " count") (Sink.count e) (Sink.count k);
      Alcotest.(check (float 1e-6)) (name ^ " min") (Sink.min_value e) (Sink.min_value k);
      Alcotest.(check (float 1e-6)) (name ^ " max") (Sink.max_value e) (Sink.max_value k);
      let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a) in
      Alcotest.(check bool) (name ^ " mean") true (close (Sink.mean e) (Sink.mean k)))
    (adversarial_streams 5_000)

let test_sink_sketch_rank_error () =
  (* Interior quantiles of a capacity-c reservoir carry O(1/sqrt c) rank
     error. Check each sketch answer against the exact quantiles at
     q +/- tol — a rank-based bound that ties (the constant stream) and
     spikes cannot fool the way a value-based bound could. *)
  let cap = 1024 in
  let tol = 4.0 /. Float.sqrt (Float.of_int cap) in
  List.iter
    (fun (name, xs) ->
      let e = Sink.exact () and k = Sink.sketch ~capacity:cap ~seed:13 () in
      sink_feed e xs;
      sink_feed k xs;
      List.iter
        (fun q ->
          let v = Sink.quantile k q in
          let lo = Sink.quantile e (Float.max 0.0 (q -. tol)) in
          let hi = Sink.quantile e (Float.min 1.0 (q +. tol)) in
          Alcotest.(check bool)
            (Printf.sprintf "%s q=%.2f: %g within rank band [%g, %g]" name q v lo hi)
            true
            (v >= lo && v <= hi))
        [ 0.1; 0.25; 0.5; 0.75; 0.9 ])
    (adversarial_streams 20_000)

let test_sink_sketch_endpoints_exact () =
  let k = Sink.sketch ~capacity:64 ~seed:3 () in
  sink_feed k (List.init 10_000 (fun i -> if i = 7777 then 1e9 else Float.of_int i));
  Alcotest.(check (float 1e-9)) "q=0 is the true min" 0.0 (Sink.quantile k 0.0);
  Alcotest.(check (float 1e-9)) "q=1 is the true max" 1e9 (Sink.quantile k 1.0)

let test_sink_sketch_deterministic () =
  let mk () =
    let k = Sink.sketch ~capacity:128 ~seed:99 () in
    sink_feed k (List.init 10_000 (fun i -> Float.of_int ((i * 7919) mod 1000)));
    k
  in
  let a = mk () and b = mk () in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "same seed, same q=%.2f" q)
        (Sink.quantile a q) (Sink.quantile b q))
    [ 0.1; 0.5; 0.9 ]

let test_sink_merge () =
  let xs = List.init 3_000 Float.of_int in
  let ys = List.init 3_000 (fun i -> Float.of_int (10_000 + i)) in
  (* exact + exact stays exact *)
  let ea = Sink.exact () and eb = Sink.exact () in
  sink_feed ea xs;
  sink_feed eb ys;
  let em = Sink.merge ea eb in
  Alcotest.(check int) "exact merged count" 6_000 (Sink.count em);
  Alcotest.(check (float 1e-9)) "exact merged max" 12_999.0 (Sink.max_value em);
  (* sketch merge keeps the exact moments and a usable reservoir *)
  let ka = Sink.sketch ~capacity:256 ~seed:1 () and kb = Sink.sketch ~capacity:256 ~seed:2 () in
  sink_feed ka xs;
  sink_feed kb ys;
  let km = Sink.merge ka kb in
  Alcotest.(check int) "sketch merged count" 6_000 (Sink.count km);
  Alcotest.(check (float 1e-9)) "sketch merged min" 0.0 (Sink.min_value km);
  Alcotest.(check (float 1e-9)) "sketch merged max" 12_999.0 (Sink.max_value km);
  let expected_mean = (Sink.mean ea *. 0.5) +. (Sink.mean eb *. 0.5) in
  Alcotest.(check (float 1e-6)) "sketch merged mean" expected_mean (Sink.mean km);
  (* the merged median separates the two halves *)
  let p50 = Sink.quantile km 0.5 in
  Alcotest.(check bool) "merged median between the halves" true (p50 > 1_000.0 && p50 < 12_000.0)

let prop_sink_quantiles_monotone_both_backends =
  QCheck.Test.make ~name:"sink quantiles monotone and within [min,max] (both backends)"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (float_range (-1000.) 1000.))
    (fun xs ->
      List.for_all
        (fun s ->
          sink_feed s xs;
          let qs = List.map (Sink.quantile s) [ 0.0; 0.1; 0.5; 0.9; 1.0 ] in
          let rec mono = function a :: (b :: _ as r) -> a <= b && mono r | _ -> true in
          mono qs
          && List.for_all (fun v -> v >= Sink.min_value s && v <= Sink.max_value s) qs)
        [ Sink.exact (); Sink.sketch ~capacity:32 ~seed:5 () ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_percentile_monotone;
      prop_cdf_bounds;
      prop_summary_merge;
      prop_sink_quantiles_monotone_both_backends;
    ]

let () =
  Alcotest.run "splay_stats"
    [
      ( "dist",
        [
          Alcotest.test_case "basic" `Quick test_dist_basic;
          Alcotest.test_case "empty" `Quick test_dist_empty;
          Alcotest.test_case "percentiles" `Quick test_dist_percentiles;
          Alcotest.test_case "add after query" `Quick test_dist_add_after_query;
          Alcotest.test_case "cdf" `Quick test_dist_cdf;
          Alcotest.test_case "histogram and pdf" `Quick test_dist_histogram_pdf;
          Alcotest.test_case "stddev and merge" `Quick test_dist_stddev_merge;
        ] );
      ( "series",
        [
          Alcotest.test_case "binning" `Quick test_series_binning;
          Alcotest.test_case "percentile series" `Quick test_series_percentile_series;
          Alcotest.test_case "counter" `Quick test_series_counter;
        ] );
      ( "summary",
        [
          Alcotest.test_case "matches dist" `Quick test_summary_matches_dist;
          Alcotest.test_case "empty" `Quick test_summary_empty;
        ] );
      ( "report",
        [
          Alcotest.test_case "cells" `Quick test_report_cells;
          Alcotest.test_case "bar" `Quick test_report_bar;
        ] );
      ( "sink",
        [
          Alcotest.test_case "exact matches dist" `Quick test_sink_exact_matches_dist;
          Alcotest.test_case "sketch moments exact" `Quick test_sink_sketch_moments_exact;
          Alcotest.test_case "sketch rank error" `Quick test_sink_sketch_rank_error;
          Alcotest.test_case "sketch endpoints exact" `Quick test_sink_sketch_endpoints_exact;
          Alcotest.test_case "sketch deterministic" `Quick test_sink_sketch_deterministic;
          Alcotest.test_case "merge" `Quick test_sink_merge;
        ] );
      ("properties", qsuite);
    ]
