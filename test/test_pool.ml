(* Tests for the multicore trial pool: results and merged observability
   output must be byte-identical for any number of domains, exceptions
   must propagate, and the pool must stay usable afterwards. *)

open Splay_sim
module Obs = Splay_obs.Obs

(* One self-contained trial: its own engine, its own seed, some spans and
   metrics recorded along the way, a plain-data result out. *)
let trial seed =
  let e = Engine.create ~seed () in
  let c = Obs.counter "pool.test.ticks" in
  let h = Obs.histogram "pool.test.fire_time" in
  let total = ref 0 in
  for i = 1 to 50 do
    ignore
      (Engine.schedule e
         ~delay:(Float.of_int (i * seed mod 17))
         (fun () ->
           Obs.incr c;
           Obs.observe h (Engine.now e);
           Obs.with_span "pool.tick" (fun () -> total := !total + i)))
  done;
  ignore (Engine.run e);
  Printf.sprintf "seed=%d total=%d end=%.3f" seed !total (Engine.now e)

let seeds = [ 3; 1; 4; 1; 5; 9; 2; 6 ]

let test_results_deterministic () =
  let r1 = Pool.map ~jobs:1 trial seeds in
  let r4 = Pool.map ~jobs:4 trial seeds in
  Alcotest.(check (list string)) "same results" r1 r4

let with_obs f =
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.enabled := false)
    f

let obs_output jobs =
  with_obs (fun () ->
      let rs = Pool.map ~jobs trial seeds in
      (rs, Obs.trace_jsonl (), Obs.metrics_jsonl ()))

let test_obs_merge_deterministic () =
  let r1, t1, m1 = obs_output 1 in
  let r4, t4, m4 = obs_output 4 in
  Alcotest.(check (list string)) "results identical" r1 r4;
  Alcotest.(check bool) "trace nonempty" true (String.length t1 > 0);
  Alcotest.(check bool) "metrics nonempty" true (String.length m1 > 0);
  Alcotest.(check string) "merged trace identical" t1 t4;
  Alcotest.(check string) "merged metrics identical" m1 m4

(* The metrics plane under fan-out: with windowed rollups armed, the
   merged [splay-metrics/1] dump must be a pure function of the trial
   list — byte-identical whether the trials ran on 1, 2 or 4 domains. *)
let metrics_output jobs =
  Obs.metrics_enabled := true;
  Obs.reset ();
  Obs.Rollup.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Rollup.clear ();
      Obs.reset ();
      Obs.metrics_enabled := false)
    (fun () ->
      let rs = Pool.map ~jobs trial seeds in
      (rs, Obs.metrics_plane_jsonl ()))

let test_metrics_plane_merge_deterministic () =
  let r1, m1 = metrics_output 1 in
  let _, m2 = metrics_output 2 in
  let r4, m4 = metrics_output 4 in
  Alcotest.(check (list string)) "results identical" r1 r4;
  Alcotest.(check bool) "dump carries the schema header" true
    (String.length m1 > 0
    && String.sub m1 0 (min 32 (String.length m1)) = "{\"schema\":\"splay-metrics/1\",\"win");
  Alcotest.(check string) "jobs=2 dump byte-identical" m1 m2;
  Alcotest.(check string) "jobs=4 dump byte-identical" m1 m4

let test_exception_propagates () =
  let f x = if x = 2 then failwith "trial boom" else x * 10 in
  (match Pool.map ~jobs:3 f [ 0; 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected the trial failure to propagate"
  | exception Failure m -> Alcotest.(check string) "msg" "trial boom" m);
  (* the pool must stay usable after a failed batch *)
  Alcotest.(check (list int)) "recovers" [ 0; 10 ] (Pool.map ~jobs:2 f [ 0; 1 ])

let test_jobs_clamped () =
  Alcotest.(check (list int)) "jobs > n" [ 2; 4 ] (Pool.map ~jobs:16 (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "jobs = 0" [ 2 ] (Pool.map ~jobs:0 (fun x -> 2 * x) [ 1 ]);
  Alcotest.(check (list int)) "empty items" [] (Pool.map ~jobs:4 (fun x -> x) [])

let test_mapi () =
  Alcotest.(check (list string))
    "index visible" [ "0:a"; "1:b" ]
    (Pool.mapi ~jobs:2 (fun i s -> Printf.sprintf "%d:%s" i s) [ "a"; "b" ])

let () =
  Alcotest.run "splay_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "results deterministic" `Quick test_results_deterministic;
          Alcotest.test_case "obs merge deterministic" `Quick test_obs_merge_deterministic;
          Alcotest.test_case "metrics plane merge deterministic" `Quick
            test_metrics_plane_merge_deterministic;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "mapi" `Quick test_mapi;
        ] );
    ]
