(* Tests for the SPLAY runtime libraries: misc, crypto, codec, sandbox,
   sb_fs, locks, env, rpc. *)

open Splay_sim
open Splay_net
open Splay_runtime

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* {2 Misc.between — ring arithmetic} *)

let m = 16 (* modulus for between tests *)

let test_between_basic () =
  let bt x a b = Misc.between x a b ~modulus:m ~incl_lo:false ~incl_hi:false in
  Alcotest.(check bool) "inside" true (bt 5 3 8);
  Alcotest.(check bool) "below" false (bt 2 3 8);
  Alcotest.(check bool) "above" false (bt 9 3 8);
  Alcotest.(check bool) "lo excl" false (bt 3 3 8);
  Alcotest.(check bool) "hi excl" false (bt 8 3 8)

let test_between_wrap () =
  let bt x a b = Misc.between x a b ~modulus:m ~incl_lo:false ~incl_hi:false in
  (* arc from 12 to 4 crosses zero *)
  Alcotest.(check bool) "wrap inside high" true (bt 14 12 4);
  Alcotest.(check bool) "wrap inside low" true (bt 2 12 4);
  Alcotest.(check bool) "wrap outside" false (bt 8 12 4)

let test_between_incl () =
  Alcotest.(check bool) "incl hi" true
    (Misc.between 8 3 8 ~modulus:m ~incl_lo:false ~incl_hi:true);
  Alcotest.(check bool) "incl lo" true
    (Misc.between 3 3 8 ~modulus:m ~incl_lo:true ~incl_hi:false);
  (* a = b: full ring *)
  Alcotest.(check bool) "degenerate full ring" true
    (Misc.between 11 5 5 ~modulus:m ~incl_lo:false ~incl_hi:false)

let test_between_negative_normalization () =
  Alcotest.(check bool) "negative x" true
    (Misc.between (-11) 3 8 ~modulus:m ~incl_lo:false ~incl_hi:false)
(* -11 mod 16 = 5 *)

let prop_between_exclusive_split =
  (* for distinct x, a, b: x is in exactly one of (a,b) and (b,a) *)
  QCheck.Test.make ~name:"between partitions the ring" ~count:1000
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_bound 1000))
    (fun (x, a, b) ->
      let modulus = 64 in
      let x = x mod modulus and a = a mod modulus and b = b mod modulus in
      QCheck.assume (x <> a && x <> b && a <> b);
      let in_ab = Misc.between x a b ~modulus ~incl_lo:false ~incl_hi:false in
      let in_ba = Misc.between x b a ~modulus ~incl_lo:false ~incl_hi:false in
      in_ab <> in_ba)

let test_ring_ops () =
  Alcotest.(check int) "add wraps" 1 (Misc.ring_add 15 2 ~modulus:16);
  Alcotest.(check int) "distance forward" 3 (Misc.ring_distance 14 1 ~modulus:16);
  Alcotest.(check int) "distance zero" 0 (Misc.ring_distance 5 5 ~modulus:16);
  Alcotest.(check int) "pow2" 1024 (Misc.pow2 10)

(* {2 Crypto} *)

let test_sha1_vectors () =
  let check input expected = Alcotest.(check string) input expected (Crypto.sha1_hex input) in
  check "" "da39a3ee5e6b4b0d3255bfef95601890afd80709";
  check "abc" "a9993e364706816aba3e25717850c26c9cd0d89d";
  check "The quick brown fox jumps over the lazy dog"
    "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

let test_sha1_block_boundaries () =
  (* message lengths around the 64-byte block and 56-byte padding limits *)
  let check input expected = Alcotest.(check string) input expected (Crypto.sha1_hex input) in
  check (String.make 55 'a') "c1c8bbdc22796e28c0e15163d20899b65621d65a";
  check (String.make 56 'a') "c2db330f6083854c99d4b5bfb6e8f29f201be699";
  check (String.make 64 'a') "0098ba824b5c16427bd7a1122a5a442a25ec644d";
  check (String.make 65 'a') "11655326c708d70319be2610e8a57d9a5b959d3b"

let test_hash_to_id_range () =
  for i = 0 to 200 do
    let id = Crypto.hash_to_id (Printf.sprintf "host-%d:2000" i) ~bits:24 in
    Alcotest.(check bool) "in range" true (id >= 0 && id < 1 lsl 24)
  done

let test_hash_to_id_deterministic () =
  Alcotest.(check int) "stable" (Crypto.hash_to_id "x:1" ~bits:24) (Crypto.hash_to_id "x:1" ~bits:24)

(* {2 Codec} *)

let value_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [
        return Codec.Null;
        map (fun b -> Codec.Bool b) bool;
        map (fun i -> Codec.Int i) int;
        map (fun s -> Codec.String s) (string_size (int_bound 20));
        map (fun f -> Codec.Float (Float.of_int f /. 8.0)) int;
      ]
  in
  let rec value depth =
    if depth = 0 then base
    else
      frequency
        [
          (3, base);
          (1, map (fun l -> Codec.List l) (list_size (int_bound 4) (value (depth - 1))));
          ( 1,
            map
              (fun l -> Codec.Assoc (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
              (list_size (int_bound 4) (value (depth - 1))) );
        ]
  in
  value 3

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec decode(encode v) = v" ~count:500
    (QCheck.make ~print:(fun v -> Codec.encode v) value_gen)
    (fun v -> Codec.equal v (Codec.decode (Codec.encode v)))

let test_codec_examples () =
  let roundtrip s = Codec.encode (Codec.decode s) in
  Alcotest.(check string) "object" {|{"a":1,"b":[true,null]}|} (roundtrip {|{"a":1,"b":[true,null]}|});
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|} (roundtrip {|"a\"b\\c\nd"|});
  Alcotest.(check string) "spaces tolerated" {|[1,2]|} (roundtrip "[ 1 , 2 ]")

let test_codec_errors () =
  let bad s = Alcotest.check_raises s (Codec.Parse_error "") (fun () ->
      try ignore (Codec.decode s) with Codec.Parse_error _ -> raise (Codec.Parse_error "")) in
  bad "{";
  bad "[1,]";
  bad "nul";
  bad {|{"a" 1}|};
  bad "[1] garbage"

let test_codec_accessors () =
  let v = Codec.decode {|{"n":3,"s":"hi","f":1.5,"l":[1,2],"b":true}|} in
  Alcotest.(check int) "int" 3 Codec.(to_int (member "n" v));
  Alcotest.(check string) "string" "hi" Codec.(to_string (member "s" v));
  Alcotest.(check (float 1e-9)) "float" 1.5 Codec.(to_float (member "f" v));
  Alcotest.(check (float 1e-9)) "int as float" 3.0 Codec.(to_float (member "n" v));
  Alcotest.(check bool) "bool" true Codec.(to_bool (member "b" v));
  Alcotest.(check int) "list" 2 (List.length Codec.(to_list (member "l" v)));
  Alcotest.check_raises "missing member" (Codec.Parse_error {|missing field "zz"|}) (fun () ->
      ignore (Codec.member "zz" v))

let test_framing () =
  let f1 = Codec.frame "hello" and f2 = Codec.frame "" in
  let buf = f1 ^ f2 ^ "12\npartial" in
  (match Codec.unframe buf ~pos:0 with
  | Some (p, next) ->
      Alcotest.(check string) "first" "hello" p;
      (match Codec.unframe buf ~pos:next with
      | Some (p2, next2) ->
          Alcotest.(check string) "second empty" "" p2;
          Alcotest.(check (option (pair string int))) "incomplete" None
            (Codec.unframe buf ~pos:next2)
      | None -> Alcotest.fail "second frame missing")
  | None -> Alcotest.fail "first frame missing")

let prop_framing_roundtrip =
  QCheck.Test.make ~name:"frame/unframe roundtrip" ~count:300
    QCheck.(list (string_of_size Gen.(int_bound 40)))
    (fun payloads ->
      let buf = String.concat "" (List.map Codec.frame payloads) in
      let rec collect pos acc =
        match Codec.unframe buf ~pos with
        | Some (p, next) -> collect next (p :: acc)
        | None -> List.rev acc
      in
      collect 0 [] = payloads)

(* {2 Sandbox} *)

let test_sandbox_memory_kill () =
  let killed = ref None in
  let sb = Sandbox.create ~limits:{ Sandbox.default with max_memory = 1000 } () in
  Sandbox.set_on_kill sb (fun m -> killed := Some m);
  Sandbox.alloc sb 900;
  Alcotest.(check int) "used" 900 (Sandbox.memory_used sb);
  (try Sandbox.alloc sb 200 with Sandbox.Violation _ -> ());
  Alcotest.(check bool) "kill callback fired" true (!killed <> None)

let test_sandbox_fs_quota_nonfatal () =
  let killed = ref false in
  let sb = Sandbox.create ~limits:{ Sandbox.default with max_fs_bytes = 100 } () in
  Sandbox.set_on_kill sb (fun _ -> killed := true);
  Sandbox.fs_grow sb 90;
  (try Sandbox.fs_grow sb 20 with Sandbox.Violation _ -> ());
  Alcotest.(check bool) "disk violation is not fatal" false !killed;
  Alcotest.(check int) "usage unchanged by failed op" 90 (Sandbox.fs_used sb)

let test_sandbox_sockets () =
  let sb = Sandbox.create ~limits:{ Sandbox.default with max_sockets = 2 } () in
  Sandbox.socket_opened sb;
  Sandbox.socket_opened sb;
  Alcotest.check_raises "cap" (Sandbox.Violation "socket limit reached (2)") (fun () ->
      Sandbox.socket_opened sb);
  Sandbox.socket_closed sb;
  Sandbox.socket_opened sb;
  Alcotest.(check int) "open count" 2 (Sandbox.sockets_open sb)

let test_sandbox_restrict () =
  let admin = { Sandbox.default with max_memory = 1000; max_sockets = 10 } in
  let ctl = { Sandbox.unlimited with max_memory = 5000; max_sockets = 5 } in
  let r = Sandbox.restrict admin ctl in
  Alcotest.(check int) "controller cannot weaken" 1000 r.Sandbox.max_memory;
  Alcotest.(check int) "controller can strengthen" 5 r.Sandbox.max_sockets

let test_sandbox_blacklist () =
  let sb = Sandbox.create () in
  Sandbox.blacklist sb 3;
  Alcotest.(check bool) "banned" true (Sandbox.blacklisted sb 3);
  Alcotest.(check bool) "others ok" false (Sandbox.blacklisted sb 4)

(* Every enforcement — fatal or not — must leave a [sandbox.violation]
   point event in the observability trace, with [fatal] telling the two
   kill paths apart. A nemesis-squeezed instance that dies without one is
   undebuggable. *)
let with_obs_trace f =
  Splay_obs.Obs.reset ();
  Splay_obs.Obs.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Splay_obs.Obs.enabled := false;
      Splay_obs.Obs.reset ())
    (fun () ->
      f ();
      Splay_obs.Obs.trace_jsonl ())

let test_sandbox_memory_kill_traced () =
  let trace =
    with_obs_trace (fun () ->
        let sb = Sandbox.create ~limits:{ Sandbox.default with max_memory = 1000 } () in
        try Sandbox.alloc sb 2000 with Sandbox.Violation _ -> ())
  in
  Alcotest.(check bool) "violation event" true (string_contains trace "sandbox.violation");
  Alcotest.(check bool) "fatal" true (string_contains trace "\"fatal\":\"true\"");
  Alcotest.(check bool) "reason names memory" true (string_contains trace "memory")

let test_sandbox_socket_denial_traced () =
  let trace =
    with_obs_trace (fun () ->
        let sb = Sandbox.create ~limits:{ Sandbox.default with max_sockets = 1 } () in
        Sandbox.socket_opened sb;
        try Sandbox.socket_opened sb with Sandbox.Violation _ -> ())
  in
  Alcotest.(check bool) "violation event" true (string_contains trace "sandbox.violation");
  Alcotest.(check bool) "nonfatal" true (string_contains trace "\"fatal\":\"false\"");
  Alcotest.(check bool) "reason names sockets" true (string_contains trace "socket")

let test_sandbox_fs_quota_traced () =
  let trace =
    with_obs_trace (fun () ->
        let sb = Sandbox.create ~limits:{ Sandbox.default with max_fs_bytes = 100 } () in
        Sandbox.fs_grow sb 90;
        try Sandbox.fs_grow sb 20 with Sandbox.Violation _ -> ())
  in
  Alcotest.(check bool) "violation event" true (string_contains trace "sandbox.violation");
  Alcotest.(check bool) "nonfatal" true (string_contains trace "\"fatal\":\"false\"")

let test_sandbox_squeeze_traced () =
  (* the [splay check] squeeze nemesis: tightening the send budget makes
     the next send fail, visibly *)
  let trace =
    with_obs_trace (fun () ->
        let sb = Sandbox.create () in
        Sandbox.network_send sb 512;
        Sandbox.squeeze sb
          { Sandbox.unlimited with max_send_bytes = Sandbox.bytes_sent sb + 64 };
        try Sandbox.network_send sb 128 with Sandbox.Violation _ -> ())
  in
  Alcotest.(check bool) "violation event" true (string_contains trace "sandbox.violation");
  Alcotest.(check bool) "nonfatal" true (string_contains trace "\"fatal\":\"false\"")

(* {2 Test fixtures: a small cluster network} *)

let with_cluster ?(n = 4) f =
  let eng = Engine.create ~seed:7 () in
  let tb = Testbed.cluster ~n (Engine.rng eng) in
  let net = Net.create eng tb in
  f eng net;
  match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e)

let mk_env net host = Env.create net ~me:(Addr.make host 2000)

(* {2 Sb_fs} *)

let test_fs_write_read () =
  with_cluster (fun _ net ->
      let env = mk_env net 0 in
      let fs = Sb_fs.create env in
      let f = Sb_fs.open_file fs "/tmp/chunk.0" ~mode:`Write in
      Sb_fs.write f "hello ";
      Sb_fs.write f "world";
      Sb_fs.close f;
      let g = Sb_fs.open_file fs "tmp/chunk.0" ~mode:`Read in
      Alcotest.(check string) "path normalization unifies" "hello world" (Sb_fs.read_all g);
      Sb_fs.close g;
      Alcotest.(check (option int)) "size" (Some 11) (Sb_fs.file_size fs "/tmp/chunk.0");
      Alcotest.(check (list string)) "list" [ "tmp/chunk.0" ] (Sb_fs.list_files fs))

let test_fs_quota () =
  with_cluster (fun _ net ->
      let env =
        Env.create net ~me:(Addr.make 0 2000)
          ~limits:{ Sandbox.default with max_fs_bytes = 10 }
      in
      let fs = Sb_fs.create env in
      let f = Sb_fs.open_file fs "a" ~mode:`Write in
      Sb_fs.write f "12345";
      (try
         Sb_fs.write f "678901";
         Alcotest.fail "quota not enforced"
       with Sb_fs.Fs_error _ -> ());
      (* instance is still alive: disk violations are not fatal *)
      Alcotest.(check bool) "still running" false (Env.is_stopped env);
      Sb_fs.write f "67890";
      Alcotest.(check int) "fits exactly" 10 (Sb_fs.used_bytes fs))

let test_fs_truncate_and_remove () =
  with_cluster (fun _ net ->
      let env = mk_env net 0 in
      let fs = Sb_fs.create env in
      let f = Sb_fs.open_file fs "x" ~mode:`Write in
      Sb_fs.write f "aaaa";
      Sb_fs.close f;
      let f2 = Sb_fs.open_file fs "x" ~mode:`Write in
      Alcotest.(check int) "truncated" 0 (Sb_fs.size f2);
      Sb_fs.write f2 "b";
      Alcotest.check_raises "remove while open" (Sb_fs.Fs_error "file in use: x") (fun () ->
          Sb_fs.remove fs "x");
      Sb_fs.close f2;
      Sb_fs.remove fs "x";
      Alcotest.(check bool) "gone" false (Sb_fs.exists fs "x");
      Alcotest.(check int) "quota returned" 0 (Sb_fs.used_bytes fs))

let test_fs_missing_read () =
  with_cluster (fun _ net ->
      let env = mk_env net 0 in
      let fs = Sb_fs.create env in
      Alcotest.check_raises "read missing" (Sb_fs.Fs_error "no such file: nope") (fun () ->
          ignore (Sb_fs.open_file fs "nope" ~mode:`Read)))

let test_fs_isolation () =
  with_cluster (fun _ net ->
      let env1 = mk_env net 0 and env2 = mk_env net 1 in
      let fs1 = Sb_fs.create env1 and fs2 = Sb_fs.create env2 in
      let f = Sb_fs.open_file fs1 "shared-name" ~mode:`Write in
      Sb_fs.write f "secret";
      Sb_fs.close f;
      Alcotest.(check bool) "other instance cannot see the file" false
        (Sb_fs.exists fs2 "shared-name"))

(* {2 Locks} *)

let test_lock_mutual_exclusion () =
  with_cluster (fun eng _ ->
      let l = Locks.create () in
      let in_section = ref false and violations = ref 0 and runs = ref 0 in
      for _ = 1 to 5 do
        ignore
          (Engine.spawn eng (fun () ->
               Locks.with_lock l (fun () ->
                   if !in_section then incr violations;
                   in_section := true;
                   Engine.sleep 1.0;
                   in_section := false;
                   incr runs)))
      done;
      ignore (Engine.run eng);
      Alcotest.(check int) "no overlap" 0 !violations;
      Alcotest.(check int) "all ran" 5 !runs;
      Alcotest.(check bool) "released" false (Locks.is_locked l))

let test_lock_fifo () =
  with_cluster (fun eng _ ->
      let l = Locks.create () in
      let order = ref [] in
      Locks.lock l;
      for i = 1 to 3 do
        ignore
          (Engine.spawn eng (fun () ->
               Locks.lock l;
               order := i :: !order;
               Locks.unlock l))
      done;
      ignore (Engine.schedule eng ~delay:1.0 (fun () -> Locks.unlock l));
      ignore (Engine.run eng);
      Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !order))

let test_lock_released_on_kill () =
  with_cluster (fun eng _ ->
      let l = Locks.create () in
      let p =
        Engine.spawn eng (fun () -> Locks.with_lock l (fun () -> Engine.sleep 100.0))
      in
      ignore (Engine.schedule eng ~delay:1.0 (fun () -> Engine.kill eng p));
      ignore (Engine.run eng);
      Alcotest.(check bool) "released by unwinding" false (Locks.is_locked l))

let test_try_lock () =
  let l = Locks.create () in
  Alcotest.(check bool) "acquire" true (Locks.try_lock l);
  Alcotest.(check bool) "busy" false (Locks.try_lock l);
  Locks.unlock l;
  Alcotest.(check bool) "again" true (Locks.try_lock l)

(* {2 Env} *)

let test_env_stop_kills_everything () =
  with_cluster (fun eng net ->
      let env = mk_env net 0 in
      let alive_work = ref 0 in
      ignore
        (Env.thread env (fun () ->
             while true do
               Env.sleep 1.0;
               incr alive_work
             done));
      ignore (Env.periodic env 1.0 (fun () -> incr alive_work));
      ignore (Engine.schedule eng ~delay:5.5 (fun () -> Env.stop env));
      ignore (Engine.run ~until:100.0 eng);
      Alcotest.(check bool) "stopped" true (Env.is_stopped env);
      (* 5 ticks from each of the two processes *)
      Alcotest.(check int) "work stopped at kill time" 10 !alive_work)

let test_env_stop_idempotent () =
  with_cluster (fun _ net ->
      let env = mk_env net 0 in
      let hooks = ref 0 in
      Env.on_stop env (fun () -> incr hooks);
      Env.stop env;
      Env.stop env;
      Alcotest.(check int) "hook once" 1 !hooks)

let test_env_self_stop () =
  with_cluster (fun eng net ->
      let env = mk_env net 0 in
      let after = ref false in
      ignore
        (Env.thread env (fun () ->
             Env.sleep 1.0;
             Env.stop env;
             after := true));
      ignore (Engine.run eng);
      Alcotest.(check bool) "self-stop unwinds" false !after;
      Alcotest.(check bool) "stopped" true (Env.is_stopped env))

(* {2 Sb_socket + RPC} *)

let test_rpc_basic_call () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env
        [
          ("add", fun args -> Codec.Int (List.fold_left (fun a v -> a + Codec.to_int v) 0 args));
          ("echo", fun args -> Codec.List args);
        ];
      let got = ref 0 in
      ignore
        (Env.thread client_env (fun () ->
             got := Codec.to_int (Rpc.call client_env server_env.Env.me "add" [ Codec.Int 19; Codec.Int 23 ])));
      ignore (Engine.run eng);
      Alcotest.(check int) "rpc result" 42 !got)

let test_rpc_latency_realistic () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [ ("noop", fun _ -> Codec.Null) ];
      let elapsed = ref 0.0 in
      ignore
        (Env.thread client_env (fun () ->
             let t0 = Engine.now eng in
             ignore (Rpc.call client_env server_env.Env.me "noop" []);
             elapsed := Engine.now eng -. t0));
      ignore (Engine.run eng);
      (* cluster RTT ~0.1ms plus processing: strictly positive, under 10ms *)
      Alcotest.(check bool) "took network time" true (!elapsed > 0.0 && !elapsed < 0.01))

let test_rpc_timeout_on_dead_host () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [ ("noop", fun _ -> Codec.Null) ];
      Net.set_host_up net 0 false;
      let result = ref (Ok Codec.Null) in
      ignore
        (Env.thread client_env (fun () ->
             result := Rpc.a_call client_env server_env.Env.me ~timeout:2.0 "noop" []));
      ignore (Engine.run eng);
      (match !result with
      | Error Rpc.Timeout -> ()
      | _ -> Alcotest.fail "expected timeout");
      Alcotest.(check bool) "timed out at deadline" true (Engine.now eng >= 2.0))

let test_rpc_remote_error () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [ ("boom", fun _ -> failwith "kaboom") ];
      let result = ref (Ok Codec.Null) in
      ignore
        (Env.thread client_env (fun () ->
             result := Rpc.a_call client_env server_env.Env.me "boom" []));
      ignore (Engine.run eng);
      match !result with
      | Error (Rpc.Remote msg) ->
          Alcotest.(check bool) "message mentions cause" true (string_contains msg "kaboom")
      | _ -> Alcotest.fail "expected remote error")

let test_rpc_unknown_proc () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [];
      let result = ref (Ok Codec.Null) in
      ignore
        (Env.thread client_env (fun () ->
             result := Rpc.a_call client_env server_env.Env.me "nope" []));
      ignore (Engine.run eng);
      match !result with
      | Error (Rpc.Remote _) -> ()
      | _ -> Alcotest.fail "expected unknown-procedure error")

let test_rpc_ping () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [];
      let up = ref false and down = ref true in
      ignore
        (Env.thread client_env (fun () ->
             up := Rpc.ping client_env server_env.Env.me;
             Net.set_host_up net 0 false;
             down := Rpc.ping client_env ~timeout:1.0 server_env.Env.me));
      ignore (Engine.run eng);
      Alcotest.(check bool) "alive host pings" true !up;
      Alcotest.(check bool) "dead host does not" false !down)

let test_rpc_blocking_handler () =
  (* a handler that itself issues an RPC: recursive routing must not deadlock *)
  with_cluster (fun eng net ->
      let a = mk_env net 0 and b = mk_env net 1 and c = mk_env net 2 in
      Rpc.server c [ ("leaf", fun _ -> Codec.String "from-c") ];
      Rpc.server b
        [
          ( "via",
            fun _ ->
              let v = Rpc.call b c.Env.me "leaf" [] in
              Codec.String ("b+" ^ Codec.to_string v) );
        ];
      let got = ref "" in
      ignore
        (Env.thread a (fun () -> got := Codec.to_string (Rpc.call a b.Env.me "via" [])));
      ignore (Engine.run eng);
      Alcotest.(check string) "chained" "b+from-c" !got)

let test_rpc_blacklist () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [];
      Sandbox.blacklist client_env.Env.sandbox 0;
      let result = ref (Ok Codec.Null) in
      ignore
        (Env.thread client_env (fun () ->
             result := Rpc.a_call client_env server_env.Env.me "x" []));
      ignore (Engine.run eng);
      match !result with
      | Error (Rpc.Network _) -> ()
      | _ -> Alcotest.fail "expected local network refusal")

let test_rpc_concurrent_calls () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env
        [
          ( "slowid",
            fun args ->
              Engine.sleep 1.0;
              List.hd args );
        ];
      let results = ref [] in
      for i = 1 to 4 do
        ignore
          (Env.thread client_env (fun () ->
               let v = Rpc.call client_env server_env.Env.me "slowid" [ Codec.Int i ] in
               results := Codec.to_int v :: !results))
      done;
      ignore (Engine.run eng);
      Alcotest.(check (list int)) "all replies matched to callers" [ 1; 2; 3; 4 ]
        (List.sort Int.compare !results);
      (* handlers ran concurrently: total time ~1s, not 4s *)
      Alcotest.(check bool) "concurrent handlers" true (Engine.now eng < 2.0))

let test_rpc_reregistration_last_wins () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [ ("ver", fun _ -> Codec.Int 1) ];
      (* re-registering the same procedure replaces the handler: the later
         binding wins and the older one is gone, not shadowed *)
      Rpc.server server_env [ ("ver", fun _ -> Codec.Int 2) ];
      Rpc.add_handler server_env "ver" (fun _ -> Codec.Int 3);
      let got = ref 0 in
      ignore
        (Env.thread client_env (fun () ->
             got := Codec.to_int (Rpc.call client_env server_env.Env.me "ver" [])));
      ignore (Engine.run eng);
      Alcotest.(check int) "last registration wins" 3 !got;
      Alcotest.(check int) "single binding, not a shadow stack" 1
        (List.length (Hashtbl.find_all (Env.rpc_handlers server_env) "ver")))

let test_rpc_notify_one_way () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      let got = ref [] in
      Rpc.server server_env
        [
          ( "event",
            fun args ->
              got := Codec.to_int (List.hd args) :: !got;
              Codec.Null );
        ];
      let sent_before = Net.messages_sent net in
      ignore
        (Env.thread client_env (fun () ->
             Rpc.notify client_env server_env.Env.me "event" [ Codec.Int 1 ];
             Rpc.notify client_env server_env.Env.me "event" [ Codec.Int 2 ]));
      ignore (Engine.run eng);
      Alcotest.(check (list int)) "both delivered in order" [ 1; 2 ] (List.rev !got);
      (* fire-and-forget: two requests on the wire and nothing coming back *)
      Alcotest.(check int) "no reply traffic" 2 (Net.messages_sent net - sent_before);
      (* a notify to an unbound/unknown destination is silently dropped *)
      ignore
        (Env.thread client_env (fun () ->
             Rpc.notify client_env (Addr.make 3 2000) "event" [ Codec.Int 9 ]));
      ignore (Engine.run eng);
      Alcotest.(check (list int)) "drop left state untouched" [ 1; 2 ] (List.rev !got))

(* The pre-unification spellings stay callable (the alert is deliberately
   silenced here — this test is what keeps the aliases honest) and answer
   exactly like the primary names they forward to. *)
let test_rpc_deprecated_aliases_compat () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [ ("id", fun args -> List.hd args) ];
      let via_alias = ref 0 and via_primary = ref 0 and pinged = ref false in
      let opts = { Rpc.default_options with timeout = 2.0 } in
      ignore
        (Env.thread client_env (fun () ->
             let old = (Rpc.call_opt [@ocaml.alert "-deprecated"]) in
             via_alias := Codec.to_int (old client_env server_env.Env.me ~options:opts "id" [ Codec.Int 7 ]);
             via_primary :=
               Codec.to_int (Rpc.call client_env server_env.Env.me ~options:opts "id" [ Codec.Int 7 ]);
             let old_ping = (Rpc.ping_opt [@ocaml.alert "-deprecated"]) in
             pinged := old_ping client_env ~options:(Rpc.with_timeout 2.0) server_env.Env.me));
      ignore (Engine.run eng);
      Alcotest.(check int) "alias = primary" !via_primary !via_alias;
      Alcotest.(check bool) "ping alias works" true !pinged)

let test_message_loss_forces_timeout () =
  with_cluster (fun eng net ->
      Net.set_loss net 1.0;
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Rpc.server server_env [ ("noop", fun _ -> Codec.Null) ];
      let result = ref (Ok Codec.Null) in
      ignore
        (Env.thread client_env (fun () ->
             result := Rpc.a_call client_env server_env.Env.me ~timeout:1.0 "noop" []));
      ignore (Engine.run eng);
      match !result with
      | Error Rpc.Timeout -> ()
      | _ -> Alcotest.fail "expected timeout under full loss")


(* {2 Log} *)

let test_log_levels_and_memory () =
  let eng = Engine.create () in
  let log = Log.create ~level:Log.Info ~sink:(Log.Memory 3) ~name:"n" eng in
  Log.debug log "invisible %d" 1;
  Log.info log "a";
  Log.warn log "b";
  Alcotest.(check bool) "debug disabled" false (Log.enabled log Log.Debug);
  Alcotest.(check int) "two retained" 2 (List.length (Log.entries log));
  Log.error log "c";
  Log.error log "d";
  (* capacity 3: oldest dropped *)
  let msgs = List.map (fun (_, _, m) -> m) (Log.entries log) in
  Alcotest.(check (list string)) "ring buffer" [ "b"; "c"; "d" ] msgs;
  Alcotest.(check int) "emitted counts all enabled" 4 (Log.count log);
  Log.set_level log Log.Error;
  Log.warn log "dropped";
  Alcotest.(check int) "level filter" 4 (Log.count log)

let test_log_forward_sink () =
  let eng = Engine.create () in
  let collected = ref [] in
  let log =
    Log.create ~name:"node-7"
      ~sink:
        (Log.Forward
           (fun ~time ~level ~node msg -> collected := (time, level, node, msg) :: !collected))
      eng
  in
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> Log.info log "hello"));
  ignore (Engine.run eng);
  match !collected with
  | [ (t, Log.Info, node, msg) ] ->
      Alcotest.(check (float 1e-9)) "stamped with virtual time" 5.0 t;
      Alcotest.(check string) "tagged with the instance name" "node-7" node;
      Alcotest.(check string) "raw message, no prefix" "hello" msg
  | _ -> Alcotest.fail "expected one forwarded entry"

(* {2 Events (paper-named aliases)} *)

let test_events_aliases () =
  with_cluster (fun eng net ->
      let env = mk_env net 0 in
      let ticks = ref 0 and ran = ref false in
      ignore (Events.thread env (fun () -> ran := true));
      ignore (Events.periodic env (fun () -> incr ticks) 2.0);
      ignore
        (Engine.spawn eng (fun () ->
             Events.sleep 7.0;
             Env.stop env));
      ignore (Engine.run eng);
      Alcotest.(check bool) "thread ran" true !ran;
      Alcotest.(check int) "three periods in 7s" 3 !ticks)

(* {2 Misc helpers} *)

let test_misc_take_and_duration () =
  Alcotest.(check (list int)) "take prefix" [ 1; 2 ] (Misc.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take all" [ 1 ] (Misc.take 5 [ 1 ]);
  Alcotest.(check (list int)) "take zero" [] (Misc.take 0 [ 1; 2 ]);
  Alcotest.(check string) "seconds" "12.0s" (Misc.duration_to_string 12.0);
  Alcotest.(check string) "minutes" "2m30s" (Misc.duration_to_string 150.0);
  Alcotest.(check string) "hours" "1h01m" (Misc.duration_to_string 3660.0)

let test_codec_encoded_size () =
  let check_sz name v =
    Alcotest.(check int) name (String.length (Codec.encode v)) (Codec.encoded_size v)
  in
  check_sz "nested" (Codec.Assoc [ ("k", Codec.List [ Codec.Int 1; Codec.Null ]) ]);
  check_sz "empty list" (Codec.List []);
  check_sz "empty object" (Codec.Assoc []);
  check_sz "min_int" (Codec.Int min_int);
  check_sz "max_int" (Codec.Int max_int);
  check_sz "negative" (Codec.Int (-7));
  check_sz "control chars" (Codec.String "a\x01\"\\\n\r\tz");
  check_sz "float integral" (Codec.Float 3.0);
  check_sz "float fraction" (Codec.Float 0.1)

(* The structural-recursion [encoded_size] must agree with the writer for
   every value shape — it is used to charge network byte costs, so a drift
   would silently skew every simulated message size. *)
let prop_encoded_size =
  QCheck.Test.make ~name:"encoded_size v = length (encode v)" ~count:500
    (QCheck.make ~print:(fun v -> Codec.encode v) value_gen)
    (fun v -> Codec.encoded_size v = String.length (Codec.encode v))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_between_exclusive_split;
      prop_codec_roundtrip;
      prop_framing_roundtrip;
      prop_encoded_size;
    ]



(* {2 Sb_stream — TCP-like connections} *)

let test_stream_echo () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      Sb_stream.listen server_env ~port:4000 ~on_accept:(fun conn ->
          let rec loop () =
            match Sb_stream.recv_timeout conn 60.0 with
            | Some msg ->
                Sb_stream.send conn ("echo:" ^ msg);
                loop ()
            | None -> ()
          in
          loop ());
      let got = ref [] in
      ignore
        (Engine.spawn eng (fun () ->
             let conn = Sb_stream.connect client_env (Addr.make 0 4000) in
             Sb_stream.send conn "one";
             Sb_stream.send conn "two";
             let first = Sb_stream.recv conn in
             let second = Sb_stream.recv conn in
             got := [ first; second ];
             Sb_stream.close conn));
      ignore (Engine.run ~until:300.0 eng);
      Alcotest.(check (list string)) "echoed in order" [ "echo:one"; "echo:two" ] !got)

let test_stream_ordering_under_jitter () =
  (* planetlab links jitter per message; the stream layer must still
     deliver in sequence *)
  let eng = Engine.create ~seed:61 () in
  let tb = Testbed.planetlab ~n:2 (Engine.rng eng) in
  let net = Net.create eng tb in
  let server_env = Env.create net ~me:(Addr.make 0 2000) in
  let client_env = Env.create net ~me:(Addr.make 1 2000) in
  let received = ref [] in
  Sb_stream.listen server_env ~port:4000 ~on_accept:(fun conn ->
      let rec loop () =
        match Sb_stream.recv_timeout conn 30.0 with
        | Some msg ->
            received := msg :: !received;
            loop ()
        | None -> ()
      in
      loop ());
  ignore
    (Engine.spawn eng (fun () ->
         let conn = Sb_stream.connect client_env (Addr.make 0 4000) in
         for i = 1 to 50 do
           Sb_stream.send conn (string_of_int i)
         done;
         Engine.sleep 30.0;
         Sb_stream.close conn));
  ignore (Engine.run ~until:300.0 eng);
  Alcotest.(check (list string)) "all 50 in order"
    (List.init 50 (fun i -> string_of_int (i + 1)))
    (List.rev !received)

let test_stream_connect_refused () =
  with_cluster (fun eng net ->
      let client_env = mk_env net 1 in
      let outcome = ref "" in
      ignore
        (Engine.spawn eng (fun () ->
             match Sb_stream.connect client_env ~timeout:3.0 (Addr.make 0 4000) with
             | _ -> outcome := "connected"
             | exception Sb_stream.Stream_error _ -> outcome := "refused"));
      ignore (Engine.run ~until:60.0 eng);
      (* nothing listens on host 0 at all: the SYN lands on an unbound port
         and the handshake times out *)
      Alcotest.(check string) "refused or timed out" "refused" !outcome)

let test_stream_close_semantics () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      let server_saw_eof = ref false in
      Sb_stream.listen server_env ~port:4000 ~on_accept:(fun conn ->
          match Sb_stream.recv_timeout conn 30.0 with
          | Some _ -> Alcotest.fail "no data was sent"
          | None -> server_saw_eof := true);
      ignore
        (Engine.spawn eng (fun () ->
             let conn = Sb_stream.connect client_env (Addr.make 0 4000) in
             Engine.sleep 1.0;
             Sb_stream.close conn;
             Alcotest.(check bool) "closed locally" false (Sb_stream.is_open conn);
             (match Sb_stream.send conn "late" with
             | () -> Alcotest.fail "send on closed connection succeeded"
             | exception Sb_stream.Stream_error _ -> ())));
      ignore (Engine.run ~until:120.0 eng);
      Alcotest.(check bool) "server saw the FIN" true !server_saw_eof)

let test_stream_counts_sockets () =
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env =
        Env.create net ~me:(Addr.make 1 2000)
          ~limits:{ Sandbox.default with max_sockets = 3 }
      in
      Sb_stream.listen server_env ~port:4000 ~on_accept:(fun _ -> ());
      let opened = ref 0 and refused = ref 0 in
      ignore
        (Engine.spawn eng (fun () ->
             (* dispatcher socket takes one slot; conns take the rest *)
             for _ = 1 to 4 do
               match Sb_stream.connect client_env ~timeout:3.0 (Addr.make 0 4000) with
               | _ -> incr opened
               | exception Sb_stream.Stream_error _ -> incr refused
             done));
      ignore (Engine.run ~until:120.0 eng);
      Alcotest.(check int) "cap respected" 2 !opened;
      Alcotest.(check int) "rest refused" 2 !refused)

let test_stream_framing_with_codec () =
  (* llenc-over-stream: frame several messages into one byte string, push
     it through a connection in arbitrary chunks, unframe at the other
     side *)
  with_cluster (fun eng net ->
      let server_env = mk_env net 0 in
      let client_env = mk_env net 1 in
      let decoded = ref [] in
      Sb_stream.listen server_env ~port:4000 ~on_accept:(fun conn ->
          let buf = Buffer.create 64 in
          let rec loop () =
            match Sb_stream.recv_timeout conn 30.0 with
            | Some chunk ->
                Buffer.add_string buf chunk;
                let rec extract pos =
                  match Codec.unframe (Buffer.contents buf) ~pos with
                  | Some (payload, next) ->
                      decoded := Codec.decode payload :: !decoded;
                      extract next
                  | None -> pos
                in
                let consumed = extract 0 in
                let rest = String.sub (Buffer.contents buf) consumed (Buffer.length buf - consumed) in
                Buffer.clear buf;
                Buffer.add_string buf rest;
                loop ()
            | None -> ()
          in
          loop ());
      ignore
        (Engine.spawn eng (fun () ->
             let conn = Sb_stream.connect client_env (Addr.make 0 4000) in
             let frames =
               String.concat ""
                 [
                   Codec.frame (Codec.encode (Codec.Int 1));
                   Codec.frame (Codec.encode (Codec.String "hello"));
                   Codec.frame (Codec.encode (Codec.List [ Codec.Bool true ]));
                 ]
             in
             (* deliberately split at awkward boundaries *)
             let third = String.length frames / 3 in
             Sb_stream.send conn (String.sub frames 0 third);
             Sb_stream.send conn (String.sub frames third third);
             Sb_stream.send conn
               (String.sub frames (2 * third) (String.length frames - (2 * third)));
             Engine.sleep 5.0;
             Sb_stream.close conn));
      ignore (Engine.run ~until:120.0 eng);
      Alcotest.(check int) "three values decoded" 3 (List.length !decoded);
      match List.rev !decoded with
      | [ Codec.Int 1; Codec.String "hello"; Codec.List [ Codec.Bool true ] ] -> ()
      | _ -> Alcotest.fail "decoded values mismatch")

let () =
  Alcotest.run "splay_runtime"
    [
      ( "misc",
        [
          Alcotest.test_case "between basic" `Quick test_between_basic;
          Alcotest.test_case "between wrap" `Quick test_between_wrap;
          Alcotest.test_case "between inclusive" `Quick test_between_incl;
          Alcotest.test_case "between negative" `Quick test_between_negative_normalization;
          Alcotest.test_case "ring ops" `Quick test_ring_ops;
        ] );
      ( "crypto",
        [
          Alcotest.test_case "sha1 vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "sha1 block boundaries" `Quick test_sha1_block_boundaries;
          Alcotest.test_case "hash_to_id range" `Quick test_hash_to_id_range;
          Alcotest.test_case "hash_to_id deterministic" `Quick test_hash_to_id_deterministic;
        ] );
      ( "codec",
        [
          Alcotest.test_case "examples" `Quick test_codec_examples;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "accessors" `Quick test_codec_accessors;
          Alcotest.test_case "framing" `Quick test_framing;
        ] );
      ( "sandbox",
        [
          Alcotest.test_case "memory kill" `Quick test_sandbox_memory_kill;
          Alcotest.test_case "fs quota nonfatal" `Quick test_sandbox_fs_quota_nonfatal;
          Alcotest.test_case "sockets" `Quick test_sandbox_sockets;
          Alcotest.test_case "restrict" `Quick test_sandbox_restrict;
          Alcotest.test_case "blacklist" `Quick test_sandbox_blacklist;
          Alcotest.test_case "memory kill traced" `Quick test_sandbox_memory_kill_traced;
          Alcotest.test_case "socket denial traced" `Quick test_sandbox_socket_denial_traced;
          Alcotest.test_case "fs quota traced" `Quick test_sandbox_fs_quota_traced;
          Alcotest.test_case "squeeze traced" `Quick test_sandbox_squeeze_traced;
        ] );
      ( "sb_fs",
        [
          Alcotest.test_case "write read" `Quick test_fs_write_read;
          Alcotest.test_case "quota" `Quick test_fs_quota;
          Alcotest.test_case "truncate and remove" `Quick test_fs_truncate_and_remove;
          Alcotest.test_case "missing read" `Quick test_fs_missing_read;
          Alcotest.test_case "isolation" `Quick test_fs_isolation;
        ] );
      ( "locks",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "fifo" `Quick test_lock_fifo;
          Alcotest.test_case "released on kill" `Quick test_lock_released_on_kill;
          Alcotest.test_case "try_lock" `Quick test_try_lock;
        ] );
      ( "env",
        [
          Alcotest.test_case "stop kills everything" `Quick test_env_stop_kills_everything;
          Alcotest.test_case "stop idempotent" `Quick test_env_stop_idempotent;
          Alcotest.test_case "self stop" `Quick test_env_self_stop;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "basic call" `Quick test_rpc_basic_call;
          Alcotest.test_case "latency realistic" `Quick test_rpc_latency_realistic;
          Alcotest.test_case "timeout on dead host" `Quick test_rpc_timeout_on_dead_host;
          Alcotest.test_case "remote error" `Quick test_rpc_remote_error;
          Alcotest.test_case "unknown proc" `Quick test_rpc_unknown_proc;
          Alcotest.test_case "ping" `Quick test_rpc_ping;
          Alcotest.test_case "blocking handler" `Quick test_rpc_blocking_handler;
          Alcotest.test_case "blacklist" `Quick test_rpc_blacklist;
          Alcotest.test_case "concurrent calls" `Quick test_rpc_concurrent_calls;
          Alcotest.test_case "re-registration last wins" `Quick test_rpc_reregistration_last_wins;
          Alcotest.test_case "notify one-way" `Quick test_rpc_notify_one_way;
          Alcotest.test_case "deprecated aliases compat" `Quick test_rpc_deprecated_aliases_compat;
          Alcotest.test_case "loss forces timeout" `Quick test_message_loss_forces_timeout;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels and memory" `Quick test_log_levels_and_memory;
          Alcotest.test_case "forward sink" `Quick test_log_forward_sink;
        ] );
      ( "events",
        [
          Alcotest.test_case "aliases" `Quick test_events_aliases;
          Alcotest.test_case "misc helpers" `Quick test_misc_take_and_duration;
          Alcotest.test_case "encoded size" `Quick test_codec_encoded_size;
        ] );
      ( "sb_stream",
        [
          Alcotest.test_case "echo" `Quick test_stream_echo;
          Alcotest.test_case "ordering under jitter" `Quick test_stream_ordering_under_jitter;
          Alcotest.test_case "connect refused" `Quick test_stream_connect_refused;
          Alcotest.test_case "close semantics" `Quick test_stream_close_semantics;
          Alcotest.test_case "socket accounting" `Quick test_stream_counts_sockets;
          Alcotest.test_case "llenc framing over stream" `Quick test_stream_framing_with_codec;
        ] );
      ("properties", qsuite);
    ]
