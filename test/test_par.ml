(* Tests for the parallel single-run engine stack: lookahead extraction
   from latency models, the Engine windowing primitives, Par/Fabric
   determinism (byte-identical traces and metrics for any worker-domain
   count), mailbox safety under random workloads, and the guard rails
   (single-shot runs, nemesis rejection, strict CLI flags). *)

open Splay_sim
module Obs = Splay_obs.Obs
module Addr = Splay_net.Addr
module Topology = Splay_net.Topology
module Latency = Splay_net.Latency
module Fabric = Splay_net.Fabric
module Env = Splay_runtime.Env
module Apps = Splay_apps

(* {2 Latency.min_rtt / lookahead} *)

let opt_float = Alcotest.(option (float 1e-12))
let syn dist = Latency.synthetic ~dist ~seed:4 ()

let test_min_rtt_dists () =
  Alcotest.check opt_float "constant" (Some 0.02) (Latency.min_rtt (syn (Latency.Constant 0.02)));
  Alcotest.check opt_float "uniform lo" (Some 0.03)
    (Latency.min_rtt (syn (Latency.Uniform { lo = 0.03; hi = 0.09 })));
  Alcotest.check opt_float "lognormal unbounded" None
    (Latency.min_rtt (syn (Latency.Lognormal { median = 0.05; sigma = 0.5 })));
  Alcotest.check opt_float "classes: cheapest positive weight" (Some 0.04)
    (Latency.min_rtt (syn (Latency.Classes [| (0.0, 0.001); (0.25, 0.04); (0.75, 0.1) |])));
  Alcotest.check opt_float "default transit-stub mix" (Some 0.01)
    (Latency.min_rtt (Latency.synthetic ~seed:4 ()));
  Alcotest.check opt_float "lookahead = min_rtt / 2" (Some 0.01)
    (Latency.lookahead (syn (Latency.Constant 0.02)));
  Alcotest.check opt_float "lookahead of lognormal" None
    (Latency.lookahead (syn (Latency.Lognormal { median = 0.05; sigma = 0.5 })))

(* Every sampled cross-host delay must honor the promise the parallel
   engine builds windows from: one-way delay >= min_rtt / 2. *)
let check_delay_floor name lat ~hosts =
  match Latency.min_rtt lat with
  | None -> Alcotest.failf "%s: expected a min_rtt" name
  | Some v ->
      Alcotest.(check bool) (name ^ ": min_rtt positive") true (v > 0.0);
      let rng = Engine.rng (Engine.create ~seed:3 ()) in
      for _ = 1 to 300 do
        let a = Rng.int rng hosts and b = Rng.int rng hosts in
        if a <> b then begin
          let d = Latency.delay lat a b in
          if d +. 1e-12 < v /. 2.0 then
            Alcotest.failf "%s: delay %g for (%d,%d) below min_rtt/2 = %g" name d a b (v /. 2.0)
        end
      done

let test_delay_floor_synthetic () =
  check_delay_floor "transit-stub" (Latency.synthetic ~seed:11 ()) ~hosts:200;
  check_delay_floor "uniform"
    (syn (Latency.Uniform { lo = 0.008; hi = 0.2 }))
    ~hosts:200

let test_min_rtt_matrix () =
  let rng = Engine.rng (Engine.create ~seed:9 ()) in
  let topo = Topology.transit_stub ~transits:3 ~stubs_per_transit:5 rng in
  let stubs = Topology.stub_routers topo in
  let stub_of h = stubs.(h mod Array.length stubs) in
  let lat = Latency.matrix topo ~stub_of in
  check_delay_floor "matrix" lat ~hosts:(2 * Array.length stubs);
  (* two hosts can share a stub router, so the bound can never exceed the
     intra-stub RTT *)
  match Latency.min_rtt lat with
  | Some v ->
      Alcotest.(check bool) "bounded by intra-stub rtt" true
        (v <= (2.0 *. Topology.intra_stub_delay topo) +. 1e-12)
  | None -> Alcotest.fail "matrix must have a min_rtt"

let test_of_fn_min_rtt () =
  let f _ _ = 0.01 in
  Alcotest.check opt_float "explicit" (Some 0.004)
    (Latency.min_rtt (Latency.of_fn ~name:"fn" ~min_rtt:0.004 f));
  Alcotest.check opt_float "absent" None (Latency.min_rtt (Latency.of_fn ~name:"fn" f));
  match Latency.of_fn ~name:"fn" ~min_rtt:0.0 f with
  | _ -> Alcotest.fail "min_rtt = 0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_fabric_rejects_unbounded () =
  let reject name lat =
    match Fabric.create ~latency:lat ~hosts:8 ~parts:2 () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
        Alcotest.(check bool) (name ^ ": error names the model") true
          (String.length msg > 0)
  in
  reject "lognormal" (syn (Latency.Lognormal { median = 0.05; sigma = 0.5 }));
  reject "of_fn without min_rtt" (Latency.of_fn ~name:"fn" (fun _ _ -> 0.01));
  (* the escape hatch with an explicit bound is accepted, and an empty
     deployment drains in zero windows *)
  let fab =
    Fabric.create
      ~latency:(Latency.of_fn ~name:"fn" ~min_rtt:0.01 (fun _ _ -> 0.02))
      ~hosts:8 ~parts:2 ()
  in
  Alcotest.(check int) "empty fabric drains" 0 (Fabric.run fab).Par.windows

(* {2 Engine windowing primitives} *)

let test_next_at_run_to () =
  let e = Engine.create ~seed:1 () in
  Alcotest.(check bool) "empty queue -> infinity" true (Engine.next_at e = infinity);
  let fired = ref [] in
  List.iter
    (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> fired := d :: !fired)))
    [ 1.0; 2.0; 3.0 ];
  Alcotest.(check (float 0.0)) "next_at sees the head" 1.0 (Engine.next_at e);
  Engine.run_to e ~stop:2.0;
  Alcotest.(check (list (float 0.0))) "strictly below stop" [ 1.0 ] !fired;
  Alcotest.(check (float 0.0)) "clock stays at the last event" 1.0 (Engine.now e);
  Alcotest.(check (float 0.0)) "stop-time event still queued" 2.0 (Engine.next_at e);
  Engine.run_to e ~stop:2.5;
  Alcotest.(check (list (float 0.0))) "half-open windows compose" [ 2.0; 1.0 ] !fired;
  Engine.run_to e ~stop:infinity;
  Alcotest.(check (list (float 0.0))) "drained" [ 3.0; 2.0; 1.0 ] !fired;
  Alcotest.(check bool) "empty again" true (Engine.next_at e = infinity)

(* {2 Par: partition 0 of a 1-partition run is the sequential engine} *)

let clock_workload e =
  let total = ref 0.0 in
  let rng = Engine.rng e in
  for _ = 1 to 50 do
    ignore (Engine.schedule e ~delay:(Rng.float rng 10.0) (fun () -> total := !total +. Engine.now e))
  done;
  total

let test_parts1_is_sequential () =
  let plain = Engine.create ~seed:5 () in
  let t_plain = clock_workload plain in
  ignore (Engine.run plain);
  let p = Par.create ~seed:5 ~lookahead:0.01 ~parts:1 () in
  let t_par = clock_workload (Par.engine p 0) in
  let info = Par.run p in
  Alcotest.(check (float 0.0)) "same event history" !t_plain !t_par;
  Alcotest.(check (float 0.0)) "same final clock" (Engine.now plain) (Engine.now (Par.engine p 0));
  Alcotest.(check int) "all events fired" 50 info.Par.events_fired

let test_par_run_guards () =
  let p = Par.create ~lookahead:0.01 ~parts:2 () in
  ignore (Par.run p);
  (match Par.run p with
  | _ -> Alcotest.fail "second run must fail: Par.t is single-shot"
  | exception Invalid_argument _ -> ());
  let p2 = Par.create ~lookahead:0.01 ~parts:2 () in
  Engine.set_perturbation (Par.engine p2 0);
  match Par.run p2 with
  | _ -> Alcotest.fail "perturbed engines must be rejected"
  | exception Invalid_argument _ -> ()

(* {2 Fabric: a small epidemic flood, the determinism workhorse} *)

let fabric_epidemic ~n ~parts ~seed ~domains () =
  let fab = Fabric.create ~seed ~hosts:n ~parts () in
  let graph_rng = Rng.split (Engine.rng (Fabric.engine fab 0)) in
  let addrs = Array.init n (fun i -> Addr.make i 9000) in
  let strides = Array.init 4 (fun _ -> 1 + Rng.int graph_rng (max 1 (n - 1))) in
  let config = { Apps.Epidemic.fanout = 3; rpc_timeout = 5.0; oneway = true } in
  let insts = Array.make n None in
  let env0 = ref None in
  for i = 0 to n - 1 do
    let peers = Array.to_list (Array.map (fun s -> addrs.((i + s) mod n)) strides) in
    let env = Env.create (Fabric.net_of_host fab i) ~me:addrs.(i) ~nodes:peers in
    if i = 0 then env0 := Some env;
    Apps.Epidemic.app ~config ~register:(fun x -> insts.(i) <- Some x) env
  done;
  let origin = match insts.(0) with Some x -> x | None -> assert false in
  let env0 = match !env0 with Some e -> e | None -> assert false in
  ignore (Env.thread env0 ~name:"origin" (fun () -> Apps.Epidemic.broadcast origin "r0"));
  let info = Fabric.run ~domains fab in
  let covered =
    Array.fold_left
      (fun acc -> function
        | Some x when Apps.Epidemic.has_received x "r0" -> acc + 1
        | _ -> acc)
      0 insts
  in
  (info, covered, Fabric.messages_sent fab, Fabric.messages_dropped fab)

let with_obs f =
  Obs.enabled := true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.enabled := false)
    f

(* The traced run as a byte string: coverage and counters folded into a
   summary line, plus the merged trace and metrics dumps. *)
let epidemic_dump ~domains () =
  with_obs (fun () ->
      let info, covered, sent, dropped = fabric_epidemic ~n:48 ~parts:4 ~seed:7 ~domains () in
      ( Printf.sprintf "windows=%d events=%d covered=%d sent=%d dropped=%d" info.Par.windows
          info.Par.events_fired covered sent dropped,
        Obs.trace_jsonl (),
        Obs.metrics_jsonl () ))

(* The core promise: a run is a pure function of (seed, parts) — the
   number of domains that *execute* it must not leak into any output.
   set_cap forces real worker domains even on a single-core CI box. *)
let test_domains_byte_identical () =
  Dpool.set_cap (Some 4);
  Fun.protect
    ~finally:(fun () -> Dpool.set_cap None)
    (fun () ->
      let s1, t1, m1 = epidemic_dump ~domains:1 () in
      let s2, t2, m2 = epidemic_dump ~domains:2 () in
      let s4, t4, m4 = epidemic_dump ~domains:4 () in
      Alcotest.(check bool) "trace nonempty" true (String.length t1 > 0);
      Alcotest.(check bool) "metrics nonempty" true (String.length m1 > 0);
      Alcotest.(check string) "summary identical (2 domains)" s1 s2;
      Alcotest.(check string) "summary identical (4 domains)" s1 s4;
      Alcotest.(check string) "trace byte-identical (2 domains)" t1 t2;
      Alcotest.(check string) "trace byte-identical (4 domains)" t1 t4;
      Alcotest.(check string) "metrics byte-identical (2 domains)" m1 m2;
      Alcotest.(check string) "metrics byte-identical (4 domains)" m1 m4)

(* {2 Golden parallel fixture} *)

(* Same regeneration story as the chord_seed7 fixtures:
     SPLAY_GOLDEN_DIR=$PWD/test/golden dune exec test/test_par.exe -- test golden *)
let golden_file name = if Sys.file_exists "golden" then "golden/" ^ name else "test/golden/" ^ name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_golden_par_trace () =
  let _, trace, metrics = epidemic_dump ~domains:1 () in
  match Sys.getenv_opt "SPLAY_GOLDEN_DIR" with
  | Some dir ->
      write_file (Filename.concat dir "epidemic_par_seed7.trace.jsonl") trace;
      write_file (Filename.concat dir "epidemic_par_seed7.metrics.jsonl") metrics;
      Printf.printf "regenerated golden files under %s\n" dir
  | None ->
      Alcotest.(check bool) "golden par trace is byte-identical" true
        (read_file (golden_file "epidemic_par_seed7.trace.jsonl") = trace);
      Alcotest.(check bool) "golden par metrics are byte-identical" true
        (read_file (golden_file "epidemic_par_seed7.metrics.jsonl") = metrics)

(* {2 Mailbox safety under random shapes} *)

(* Any (population, partition count) must drain without tripping the
   past-delivery check inside Par.absorb_mail (which raises Failure) and
   without inventing or losing messages. *)
let test_mailbox_safety =
  QCheck.Test.make ~name:"random fabrics drain without past deliveries" ~count:10
    QCheck.(pair (int_range 12 40) (int_range 1 5))
    (fun (n, parts) ->
      let info, covered, sent, dropped = fabric_epidemic ~n ~parts ~seed:(n + (7 * parts)) ~domains:parts () in
      info.Par.windows >= 0 && covered >= 1 && sent >= dropped && sent > 0)

(* {2 Pool and check sweeps on real worker domains} *)

(* test_pool already pins jobs-count determinism, but on a single-core
   machine Dpool clamps every batch to the calling domain. Force real
   domains so the merge logic is exercised under true parallelism. *)
let pool_trial seed =
  let e = Engine.create ~seed () in
  let c = Obs.counter "par.test.ticks" in
  let total = ref 0 in
  for i = 1 to 40 do
    ignore
      (Engine.schedule e
         ~delay:(Float.of_int (i * seed mod 13))
         (fun () ->
           Obs.incr c;
           Obs.with_span "par.pool.tick" (fun () -> total := !total + i)))
  done;
  ignore (Engine.run e);
  Printf.sprintf "seed=%d total=%d end=%.3f" seed !total (Engine.now e)

let test_pool_forced_domains_deterministic () =
  Dpool.set_cap (Some 4);
  Fun.protect
    ~finally:(fun () -> Dpool.set_cap None)
    (fun () ->
      let out jobs =
        with_obs (fun () ->
            let rs = Pool.map ~jobs pool_trial [ 3; 1; 4; 1; 5; 9 ] in
            (rs, Obs.trace_jsonl (), Obs.metrics_jsonl ()))
      in
      let r1, t1, m1 = out 1 in
      let r4, t4, m4 = out 4 in
      Alcotest.(check (list string)) "results identical" r1 r4;
      Alcotest.(check string) "trace identical" t1 t4;
      Alcotest.(check string) "metrics identical" m1 m4)

(* The pool has one global batch slot: submitting from inside a running
   batch (Pool.map or Par.run from within a pool trial) must raise
   rather than corrupt the generation protocol or deadlock. *)
let test_dpool_rejects_nested_submission () =
  Dpool.set_cap (Some 2);
  Fun.protect
    ~finally:(fun () -> Dpool.set_cap None)
    (fun () ->
      match Dpool.run ~workers:2 (fun () -> Dpool.run ~workers:2 (fun () -> ())) with
      | () -> Alcotest.fail "nested Dpool.run must be rejected"
      | exception Invalid_argument _ -> ();
      (* the guard resets: a fresh top-level batch still works *)
      let hits = Atomic.make 0 in
      Dpool.run ~workers:2 (fun () -> Atomic.incr hits);
      Alcotest.(check bool) "pool usable after rejected nesting" true (Atomic.get hits >= 1))

let test_check_sweep_jobs_deterministic () =
  Dpool.set_cap (Some 4);
  Fun.protect
    ~finally:(fun () -> Dpool.set_cap None)
    (fun () ->
      let suites =
        match Splay_check.Suite.find "smoke" with
        | Ok s -> s
        | Error m -> Alcotest.fail m
      in
      let failing jobs =
        let r =
          Splay_check.Runner.sweep ~suites ~seeds:6 ~jobs ~shrink_failures:false ()
        in
        List.concat_map
          (fun (s : Splay_check.Runner.suite_report) ->
            List.map (fun seed -> (s.Splay_check.Runner.r_suite, seed)) s.Splay_check.Runner.r_failing)
          r.Splay_check.Runner.rep_suites
      in
      let f1 = failing 1 and f2 = failing 2 in
      Alcotest.(check (list (pair string int))) "failing seeds identical across jobs" f1 f2)

(* {2 Bench harness CLI: --domains strictness} *)

let bench_exe () =
  let local = "../bench/main.exe" in
  if Sys.file_exists local then Some local else None

let test_bench_domains_flag_errors () =
  match bench_exe () with
  | None -> () (* run outside the dune sandbox; nothing to exercise *)
  | Some exe ->
      let run args =
        Sys.command (Filename.quote_command exe args ~stdout:Filename.null ~stderr:Filename.null)
      in
      List.iter
        (fun args ->
          Alcotest.(check int) (String.concat " " ("exit 2 for" :: args)) 2 (run args))
        [ [ "--domains" ]; [ "--domains=" ]; [ "--domains=x" ]; [ "--domains=0" ]; [ "--domains"; "-3" ] ];
      Alcotest.(check int) "exit 0 for valid flag + --list" 0 (run [ "--domains=2"; "--list" ])

let () =
  Alcotest.run "splay_par"
    [
      ( "lookahead",
        [
          Alcotest.test_case "min_rtt per distribution" `Quick test_min_rtt_dists;
          Alcotest.test_case "delay floor (synthetic)" `Quick test_delay_floor_synthetic;
          Alcotest.test_case "matrix min_rtt" `Quick test_min_rtt_matrix;
          Alcotest.test_case "of_fn min_rtt" `Quick test_of_fn_min_rtt;
          Alcotest.test_case "fabric rejects unbounded models" `Quick test_fabric_rejects_unbounded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "next_at / run_to" `Quick test_next_at_run_to;
          Alcotest.test_case "parts=1 is the sequential engine" `Quick test_parts1_is_sequential;
          Alcotest.test_case "run guards" `Quick test_par_run_guards;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical across domain counts" `Quick
            test_domains_byte_identical;
          Alcotest.test_case "golden" `Quick test_golden_par_trace;
          Alcotest.test_case "pool on forced real domains" `Quick
            test_pool_forced_domains_deterministic;
          Alcotest.test_case "dpool rejects nested submission" `Quick
            test_dpool_rejects_nested_submission;
          Alcotest.test_case "check sweep failing seeds across jobs" `Quick
            test_check_sweep_jobs_deterministic;
          QCheck_alcotest.to_alcotest test_mailbox_safety;
        ] );
      ( "bench-cli",
        [ Alcotest.test_case "--domains flag errors" `Quick test_bench_domains_flag_errors ] );
    ]
