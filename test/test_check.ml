(* Tests for the simulation-testing layer: schedule perturbation, the
   nemesis DSL, invariant registries, and the sweep runner. *)

module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Nemesis = Splay_check.Nemesis
module Invariant = Splay_check.Invariant
module Suite = Splay_check.Suite
module Runner = Splay_check.Runner

(* {2 Schedule perturbation} *)

(* Ten procs wake at the same instant; the firing order is the engine's
   tie-break. *)
let tie_order ~seed ~perturb =
  let e = Engine.create ~seed () in
  if perturb then Engine.set_perturbation ~tie_shuffle:true e;
  let log = ref [] in
  for i = 0 to 9 do
    ignore
      (Engine.spawn e (fun () ->
           Engine.sleep 1.0;
           log := i :: !log))
  done;
  ignore (Engine.run e);
  List.rev !log

let test_perturb_off_is_fifo () =
  Alcotest.(check (list int)) "fifo" (List.init 10 Fun.id) (tie_order ~seed:5 ~perturb:false)

let test_perturb_changes_order () =
  Alcotest.(check bool)
    "shuffled" true
    (tie_order ~seed:5 ~perturb:true <> List.init 10 Fun.id)

let test_perturb_deterministic () =
  Alcotest.(check (list int))
    "same seed, same schedule"
    (tie_order ~seed:5 ~perturb:true)
    (tie_order ~seed:5 ~perturb:true);
  Alcotest.(check bool)
    "different seed, different schedule" true
    (tie_order ~seed:5 ~perturb:true <> tie_order ~seed:6 ~perturb:true)

(* {2 Nemesis DSL} *)

let test_nemesis_roundtrip () =
  let cases =
    [
      "crash 2 @ 30";
      "stop 1 @ 12.5";
      "restart 1 @ 90";
      "join 3 @ 60";
      "partition 2 @ 40 to 90";
      "drop 0.3 @ 40 to 90";
      "slow 0.5 @ 10 to 20";
      "squeeze 2 x 4096 @ 50";
      "crash 1 @ 5; join 1 @ 60; slow 0.25 @ 40 to 70";
    ]
  in
  List.iter
    (fun s -> Alcotest.(check string) s s (Nemesis.to_string (Nemesis.parse s)))
    cases

let test_nemesis_churn_roundtrip () =
  let s = "crash 1 @ 5; churn{at 10s leave 25%} @ 30" in
  let t = Nemesis.parse s in
  (* parse . to_string is a fixpoint even when a churn script rides along *)
  Alcotest.(check string) "fixpoint" (Nemesis.to_string t)
    (Nemesis.to_string (Nemesis.parse (Nemesis.to_string t)))

let test_nemesis_parse_errors () =
  let bad = [ "crash"; "crash two @ 5"; "frobnicate 1 @ 2" ] in
  List.iter
    (fun s ->
      match try Ok (Nemesis.parse s) with e -> Error e with
      | Ok _ -> Alcotest.failf "%S parsed" s
      | Error (Nemesis.Parse_error _) -> ()
      | Error e -> Alcotest.failf "%S raised %s, not Parse_error" s (Printexc.to_string e))
    bad

let test_nemesis_duration () =
  let t = Nemesis.parse "crash 1 @ 5; drop 0.3 @ 40 to 90" in
  Alcotest.(check (float 1e-9)) "heal included" 90.0 (Nemesis.duration t)

let test_nemesis_shrink () =
  let t = Nemesis.parse "crash 2 @ 5; drop 0.4 @ 40 to 90" in
  let cands = Nemesis.shrink_candidates t in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  (* removals come first: dropping either op is offered before weakenings *)
  Alcotest.(check bool) "first removes an op" true (List.length (List.hd cands) = 1);
  List.iter
    (fun c ->
      let smaller =
        List.length c < List.length t
        || Nemesis.duration c < Nemesis.duration t
        || Nemesis.to_string c <> Nemesis.to_string t
      in
      Alcotest.(check bool) "strictly simpler" true smaller)
    cands;
  Alcotest.(check bool) "empty shrinks to nothing" true (Nemesis.shrink_candidates [] = [])

(* {2 Invariant registry} *)

let test_invariant_phases () =
  let t = Invariant.create () in
  Invariant.register t ~phase:Invariant.Checkpoint "safety" (fun () -> Error "always");
  Invariant.register t "convergence" (fun () -> Error "later");
  Alcotest.(check (list string)) "names" [ "safety"; "convergence" ] (Invariant.names t);
  let names vs = List.map (fun v -> v.Invariant.v_name) vs in
  Alcotest.(check (list string))
    "checkpoint runs safety only" [ "safety" ]
    (names (Invariant.eval t ~at:1.0 Invariant.Checkpoint));
  Alcotest.(check (list string))
    "quiescence runs everything" [ "safety"; "convergence" ]
    (names (Invariant.eval t ~at:2.0 Invariant.Quiescence))

let test_invariant_raising_oracle () =
  let t = Invariant.create () in
  Invariant.register t "boom" (fun () -> failwith "kaput");
  match Invariant.eval t ~at:3.0 Invariant.Quiescence with
  | [ v ] ->
      Alcotest.(check string) "name" "boom" v.Invariant.v_name;
      Alcotest.(check bool) "reason mentions raise" true
        (String.length v.Invariant.v_reason > 0)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* {2 Runner} *)

let find_suite name =
  match Suite.find name with
  | Ok [ s ] -> s
  | Ok _ | Error _ -> Alcotest.failf "suite %s not found" name

(* The pinned bug: base Chord (no fault tolerance) loses its ring under a
   single crash, and the fault-tolerant variant survives the exact same
   fault schedule. This is the repo's standing demo of [splay check]; if
   either side flips, the README walkthrough is stale. *)
let pinned_nemesis = Nemesis.parse "crash 1 @ 20.5959"

let test_pinned_chord_bug () =
  let chord = find_suite "chord" in
  let o = Runner.run_one ~suite:chord ~seed:1 ~nemesis:pinned_nemesis ~perturb:true () in
  Alcotest.(check bool) "base chord fails" true (Suite.failed o);
  Alcotest.(check bool) "violations, not crashes" true (o.Suite.o_crashes = []);
  let names =
    List.map (fun v -> v.Invariant.v_name) o.Suite.o_violations |> List.sort_uniq compare
  in
  Alcotest.(check bool) "ring oracle fired" true
    (List.mem "ring.successor-agreement" names)

let test_pinned_chord_ft_survives () =
  let ft = find_suite "chord-ft" in
  let o = Runner.run_one ~suite:ft ~seed:1 ~nemesis:pinned_nemesis ~perturb:true () in
  Alcotest.(check bool) "ft chord passes" false (Suite.failed o)

let test_replay_determinism () =
  let chord = find_suite "chord" in
  let run () = Runner.run_one ~suite:chord ~seed:1 ~nemesis:pinned_nemesis ~perturb:true () in
  let a = run () and b = run () in
  Alcotest.(check string) "identical outcome" (Suite.outcome_to_string a)
    (Suite.outcome_to_string b)

let test_nemesis_for_is_pure () =
  let chord = find_suite "chord" in
  Alcotest.(check string) "same (suite, seed), same nemesis"
    (Nemesis.to_string (Runner.nemesis_for chord 3))
    (Nemesis.to_string (Runner.nemesis_for chord 3));
  Alcotest.(check bool) "seeds differ" true
    (Nemesis.to_string (Runner.nemesis_for chord 3)
    <> Nemesis.to_string (Runner.nemesis_for chord 4))

(* The sweep contract: --jobs changes wall-clock time only. The same
   suites and seeds must report the same failing sets at any [jobs]. *)
let test_sweep_jobs_independent () =
  let suites = [ find_suite "chord" ] in
  let failing jobs =
    let rep = Runner.sweep ~suites ~seeds:2 ~jobs ~shrink_failures:false () in
    List.map (fun r -> (r.Runner.r_suite, r.Runner.r_failing)) rep.Runner.rep_suites
  in
  let seq = failing 1 in
  Alcotest.(check bool) "chord fails in the sweep" true
    (List.exists (fun (_, f) -> f <> []) seq);
  Alcotest.(check (list (pair string (list int)))) "jobs=2 identical" seq (failing 2)

let test_shrink_minimizes () =
  let chord = find_suite "chord" in
  (* a deliberately padded schedule: the slow op is irrelevant to the bug *)
  let nem = Nemesis.parse "crash 1 @ 20.5959; slow 0.2 @ 40 to 70" in
  let o = Runner.run_one ~suite:chord ~seed:1 ~nemesis:nem ~perturb:true () in
  Alcotest.(check bool) "padded schedule fails" true (Suite.failed o);
  let shrunk, steps = Runner.shrink ~suite:chord ~seed:1 ~perturb:true o in
  Alcotest.(check bool) "still fails" true (Suite.failed shrunk);
  Alcotest.(check bool) "made progress" true (steps >= 1);
  Alcotest.(check bool) "dropped the irrelevant op" true
    (List.length shrunk.Suite.o_nemesis < List.length nem)

let contains hay sub =
  let nh = String.length hay and ns = String.length sub in
  let rec at i = i + ns <= nh && (String.sub hay i ns = sub || at (i + 1)) in
  at 0

let test_replay_command_quotes () =
  let cmd = Runner.replay_command ~suite:"chord" ~seed:1 pinned_nemesis in
  Alcotest.(check bool) "mentions suite, seed and nemesis" true
    (contains cmd "--suite chord" && contains cmd "--seed 1" && contains cmd "--nemesis")

let () =
  Alcotest.run "check"
    [
      ( "perturbation",
        [
          Alcotest.test_case "off is fifo" `Quick test_perturb_off_is_fifo;
          Alcotest.test_case "on changes order" `Quick test_perturb_changes_order;
          Alcotest.test_case "deterministic per seed" `Quick test_perturb_deterministic;
        ] );
      ( "nemesis",
        [
          Alcotest.test_case "roundtrip" `Quick test_nemesis_roundtrip;
          Alcotest.test_case "churn roundtrip" `Quick test_nemesis_churn_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_nemesis_parse_errors;
          Alcotest.test_case "duration" `Quick test_nemesis_duration;
          Alcotest.test_case "shrink candidates" `Quick test_nemesis_shrink;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "phases" `Quick test_invariant_phases;
          Alcotest.test_case "raising oracle" `Quick test_invariant_raising_oracle;
        ] );
      ( "runner",
        [
          Alcotest.test_case "pinned chord bug" `Quick test_pinned_chord_bug;
          Alcotest.test_case "pinned chord-ft survives" `Quick test_pinned_chord_ft_survives;
          Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
          Alcotest.test_case "nemesis_for pure" `Quick test_nemesis_for_is_pure;
          Alcotest.test_case "sweep jobs-independent" `Quick test_sweep_jobs_independent;
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "replay command" `Quick test_replay_command_quotes;
        ] );
    ]
