(* Failure-injection tests: sandbox kills, crashes racing in-flight RPCs,
   protocol behaviour under partial failures and lossy links. *)

open Splay_sim
open Splay_net
open Splay_runtime
open Splay_ctl
module Apps = Splay_apps

let with_platform ?(hosts = 10) ?(seed = 51) f =
  let eng = Engine.create ~seed () in
  let tb0 = Testbed.cluster ~n:hosts (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init hosts Fun.id) in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown daemons;
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () -> f eng net ctl)));
  ignore (Engine.run ~until:50_000.0 eng);
  match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e)

(* {2 Sandbox enforcement in a live deployment} *)

let test_memory_hog_is_killed_others_survive () =
  with_platform (fun _ _ ctl ->
      let main env =
        (* position 1 leaks memory until the sandbox kills it *)
        if env.Env.position = 1 then
          ignore
            (Env.thread env (fun () ->
                 while true do
                   Env.sleep 1.0;
                   Sandbox.alloc env.Env.sandbox (1024 * 1024)
                 done))
      in
      let desc =
        Descriptor.make
          ~limits:{ Sandbox.unlimited with Sandbox.max_memory = 4 * 1024 * 1024 }
          5
      in
      let dep = Controller.deploy ctl ~name:"hog" ~main desc in
      Alcotest.(check int) "all start" 5 (Controller.live_count dep);
      Env.sleep 30.0;
      (* the hog is dead, the well-behaved instances are not *)
      Alcotest.(check int) "only the hog died" 4 (Controller.live_count dep);
      let positions = List.map (fun (_, _, p) -> p) (Controller.live_members dep) in
      Alcotest.(check bool) "position 1 is gone" false (List.mem 1 positions))

let test_disk_hog_survives_with_failed_writes () =
  with_platform (fun _ _ ctl ->
      let write_errors = ref 0 in
      let main env =
        let fs = Sb_fs.create env in
        ignore
          (Env.thread env (fun () ->
               for i = 1 to 20 do
                 Env.sleep 1.0;
                 try
                   let f = Sb_fs.open_file fs (Printf.sprintf "f%d" i) ~mode:`Write in
                   Sb_fs.write f (String.make 1024 'x');
                   Sb_fs.close f
                 with Sb_fs.Fs_error _ -> incr write_errors
               done))
      in
      let desc =
        Descriptor.make ~limits:{ Sandbox.unlimited with Sandbox.max_fs_bytes = 5 * 1024 } 1
      in
      let dep = Controller.deploy ctl ~name:"disk-hog" ~main desc in
      Env.sleep 30.0;
      (* disk violations fail the operation but never kill the instance *)
      Alcotest.(check int) "instance alive" 1 (Controller.live_count dep);
      Alcotest.(check int) "writes beyond the quota failed" 15 !write_errors)

(* {2 Crashes racing in-flight RPCs} *)

let test_callee_crashes_mid_call () =
  (* direct (non-deployment) setup for precise control of the timing *)
  let eng = Engine.create ~seed:52 () in
  let tb = Testbed.cluster ~n:2 (Engine.rng eng) in
  let net = Net.create eng tb in
  let server = Env.create net ~me:(Addr.make 0 2000) in
  let client = Env.create net ~me:(Addr.make 1 2000) in
  Rpc.server server
    [
      ( "slow",
        fun _ ->
          Engine.sleep 30.0;
          Codec.Null );
    ];
  let result = ref None in
  ignore
    (Env.thread client (fun () ->
         result := Some (Rpc.a_call client server.Env.me ~timeout:10.0 "slow" [])));
  (* kill the server while the handler sleeps *)
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Env.stop server));
  ignore (Engine.run eng);
  (match !result with
  | Some (Error Rpc.Timeout) -> ()
  | Some _ -> Alcotest.fail "expected timeout after callee death"
  | None -> Alcotest.fail "call never returned");
  Alcotest.(check (list reject)) "no crashed processes" []
    (List.map snd (Engine.crashed eng))

let test_caller_killed_mid_call () =
  let eng = Engine.create ~seed:53 () in
  let tb = Testbed.cluster ~n:2 (Engine.rng eng) in
  let net = Net.create eng tb in
  let server = Env.create net ~me:(Addr.make 0 2000) in
  let client = Env.create net ~me:(Addr.make 1 2000) in
  let served = ref 0 in
  Rpc.server server
    [
      ( "slow",
        fun _ ->
          Engine.sleep 5.0;
          incr served;
          Codec.Null );
    ];
  let after_call = ref false in
  ignore
    (Env.thread client (fun () ->
         ignore (Rpc.call client server.Env.me "slow" []);
         after_call := true));
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Env.stop client));
  ignore (Engine.run eng);
  Alcotest.(check bool) "caller never resumed" false !after_call;
  Alcotest.(check int) "server completed the work anyway" 1 !served;
  Alcotest.(check (list reject)) "no crashes" [] (List.map snd (Engine.crashed eng))

(* {2 Protocols under injected failures} *)

let test_scribe_tree_heals_after_forwarder_crash () =
  with_platform ~hosts:12 (fun _ _ ctl ->
      let scribes = ref [] in
      let config =
        {
          Apps.Pastry.default_config with
          bits = 16;
          stabilize_interval = 2.0;
          rpc_timeout = 3.0;
          join_delay_per_position = 0.2;
        }
      in
      let main env =
        Apps.Pastry.app ~config
          ~register:(fun p -> scribes := (Apps.Scribe.create p, env) :: !scribes)
          env
      in
      let dep =
        Controller.deploy ctl ~name:"scribe" ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 20)
      in
      Env.sleep 120.0;
      let topic = Apps.Scribe.topic_of_name (fst (List.hd !scribes)) "resilient" in
      let subscribers = List.filteri (fun i _ -> i < 12) !scribes in
      List.iter (fun (s, _) -> Apps.Scribe.subscribe s ~topic) subscribers;
      Env.sleep 10.0;
      (* crash a quarter of the overlay, including possibly forwarders *)
      List.iteri
        (fun i (_, a, _) -> if i mod 4 = 0 then Controller.crash_node dep a)
        (Controller.live_members dep);
      (* wait past the soft-state refresh (30 s) so trees re-graft *)
      Env.sleep 90.0;
      let live_subs =
        List.filter (fun (_, env) -> not (Env.is_stopped env)) subscribers
      in
      let publisher =
        fst (List.find (fun (_, env) -> not (Env.is_stopped env)) (List.rev !scribes))
      in
      Apps.Scribe.publish publisher ~topic ~payload:"after-crash";
      Env.sleep 20.0;
      let got =
        List.length
          (List.filter
             (fun (s, _) ->
               List.exists (fun (t, p) -> t = topic && p = "after-crash") (Apps.Scribe.delivered s))
             live_subs)
      in
      Alcotest.(check bool)
        (Printf.sprintf "most live subscribers still reached (%d/%d)" got (List.length live_subs))
        true
        (got >= List.length live_subs - 2))

let test_epidemic_with_packet_loss () =
  with_platform (fun _ net ctl ->
      let nodes = ref [] in
      ignore
        (Controller.deploy ctl ~name:"epidemic"
           ~main:
             (Apps.Epidemic.app
                ~config:{ Apps.Epidemic.fanout = 10; rpc_timeout = 3.0; oneway = false }
                ~register:(fun c -> nodes := c :: !nodes))
           (Descriptor.make ~bootstrap:(Descriptor.Random_subset 15) 40));
      Env.sleep 5.0;
      (* drop packets only once the overlay is deployed: the lossy-link
         study targets the protocol, not the control plane *)
      Net.set_loss net 0.20;
      Apps.Epidemic.broadcast (List.hd !nodes) "wet-rumor";
      Env.sleep 30.0;
      let covered =
        List.length (List.filter (fun c -> Apps.Epidemic.has_received c "wet-rumor") !nodes)
      in
      (* 20% loss with fanout 10: epidemic redundancy still covers nearly all *)
      Alcotest.(check bool)
        (Printf.sprintf "coverage despite 20%% loss (%d/40)" covered)
        true (covered >= 35))

let test_bittorrent_leecher_churn () =
  with_platform ~hosts:12 (fun _ _ ctl ->
      let nodes = ref [] in
      let config =
        {
          Apps.Bittorrent.default_config with
          piece_size = 64 * 1024;
          choke_interval = 5.0;
          optimistic_interval = 10.0;
          tracker_interval = 15.0;
          rpc_timeout = 10.0;
        }
      in
      let dep =
        Controller.deploy ctl ~name:"bt"
          ~main:
            (Apps.Bittorrent.app ~config ~file_size:(1024 * 1024)
               ~register:(fun c -> nodes := c :: !nodes))
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 10)
      in
      Env.sleep 30.0;
      (* kill two leechers mid-download (never the seed/tracker) *)
      let victims =
        List.filter (fun (_, _, pos) -> pos = 3 || pos = 5) (Controller.live_members dep)
      in
      List.iter (fun (_, a, _) -> Controller.crash_node dep a) victims;
      let rec wait budget =
        Env.sleep 30.0;
        let live = List.filter (fun c -> not (Apps.Bittorrent.is_stopped c)) !nodes in
        if budget > 0.0 && not (List.for_all Apps.Bittorrent.complete live) then
          wait (budget -. 30.0)
      in
      wait 900.0;
      let live = List.filter (fun c -> not (Apps.Bittorrent.is_stopped c)) !nodes in
      Alcotest.(check int) "eight peers remain" 8 (List.length live);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "survivor complete (%d/%d)" (Apps.Bittorrent.pieces_have c)
               (Apps.Bittorrent.total_pieces c))
            true (Apps.Bittorrent.complete c))
        live)

let test_cyclon_connectivity_after_churn () =
  with_platform (fun _ _ ctl ->
      let nodes = ref [] in
      let config =
        { Apps.Cyclon.default_config with period = 2.0; cache_size = 8; shuffle_length = 4; rpc_timeout = 3.0 }
      in
      let dep =
        Controller.deploy ctl ~name:"cyclon"
          ~main:(Apps.Cyclon.app ~config ~register:(fun c -> nodes := c :: !nodes))
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 30)
      in
      Env.sleep 60.0;
      List.iteri
        (fun i (_, a, _) -> if i mod 3 = 0 then Controller.crash_node dep a)
        (Controller.live_members dep);
      Env.sleep 120.0;
      let live = List.filter (fun c -> not (Apps.Cyclon.is_stopped c)) !nodes in
      let live_addrs =
        List.map (fun c -> Addr.to_string (Apps.Cyclon.self c).Apps.Node.addr) live
      in
      (* dead entries age out through shuffles; caches point mostly at live peers *)
      let stale = ref 0 and total = ref 0 in
      List.iter
        (fun c ->
          List.iter
            (fun n ->
              incr total;
              if not (List.mem (Addr.to_string n.Apps.Node.addr) live_addrs) then incr stale)
            (Apps.Cyclon.neighbors c))
        live;
      let stale_frac = Float.of_int !stale /. Float.of_int (max 1 !total) in
      Alcotest.(check bool)
        (Printf.sprintf "stale entries mostly purged (%.0f%%)" (100.0 *. stale_frac))
        true (stale_frac < 0.25);
      (* the union graph over live nodes stays connected *)
      let adj = Hashtbl.create 64 in
      let add a b =
        let l = Option.value ~default:[] (Hashtbl.find_opt adj a) in
        if not (List.mem b l) then Hashtbl.replace adj a (b :: l)
      in
      List.iter
        (fun c ->
          let me = Addr.to_string (Apps.Cyclon.self c).Apps.Node.addr in
          List.iter
            (fun n ->
              let other = Addr.to_string n.Apps.Node.addr in
              if List.mem other live_addrs then begin
                add me other;
                add other me
              end)
            (Apps.Cyclon.neighbors c))
        live;
      let visited = Hashtbl.create 64 in
      let rec bfs = function
        | [] -> ()
        | x :: rest ->
            if Hashtbl.mem visited x then bfs rest
            else begin
              Hashtbl.replace visited x ();
              bfs (Option.value ~default:[] (Hashtbl.find_opt adj x) @ rest)
            end
      in
      bfs [ List.hd live_addrs ];
      Alcotest.(check int) "live overlay connected" (List.length live) (Hashtbl.length visited))

let () =
  Alcotest.run "splay_robustness"
    [
      ( "sandbox",
        [
          Alcotest.test_case "memory hog killed" `Quick test_memory_hog_is_killed_others_survive;
          Alcotest.test_case "disk hog survives" `Quick test_disk_hog_survives_with_failed_writes;
        ] );
      ( "rpc races",
        [
          Alcotest.test_case "callee crashes mid-call" `Quick test_callee_crashes_mid_call;
          Alcotest.test_case "caller killed mid-call" `Quick test_caller_killed_mid_call;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "scribe heals" `Quick test_scribe_tree_heals_after_forwarder_crash;
          Alcotest.test_case "epidemic vs loss" `Quick test_epidemic_with_packet_loss;
          Alcotest.test_case "bittorrent leecher churn" `Quick test_bittorrent_leecher_churn;
          Alcotest.test_case "cyclon after churn" `Quick test_cyclon_connectivity_after_churn;
        ] );
    ]
