(* Tests for the simulation substrate: RNG, heap, engine, ivar, channel. *)

open Splay_sim

let check_float = Alcotest.(check (float 1e-9))

(* {2 Event heap} *)

let drain_eheap h =
  let rec go acc = match Eheap.pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let test_eheap_order () =
  let h = Eheap.create () in
  List.iteri (fun i x -> Eheap.push h ~at:(Float.of_int x) ~seq:i x) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check int) "size" 7 (Eheap.size h);
  check_float "min_at" 1.0 (Eheap.min_at h);
  Alcotest.(check (option int)) "peek" (Some 1) (Eheap.peek h);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain_eheap h);
  Alcotest.(check (option int)) "empty pop" None (Eheap.pop h)

let test_eheap_empty () =
  let h = Eheap.create () in
  Alcotest.(check bool) "is_empty" true (Eheap.is_empty h);
  Alcotest.(check bool) "min_at empty" true (Eheap.min_at h = infinity);
  Alcotest.(check (option int)) "peek" None (Eheap.peek h);
  Eheap.push h ~at:1.0 ~seq:0 1;
  Eheap.clear h;
  Alcotest.(check bool) "cleared" true (Eheap.is_empty h)

let test_eheap_fifo_ties () =
  (* entries sharing [at] must come out in seq (= insertion) order *)
  let h = Eheap.create () in
  for i = 0 to 9 do
    Eheap.push h ~at:1.0 ~seq:i i
  done;
  Eheap.push h ~at:0.5 ~seq:100 100;
  Alcotest.(check (list int)) "fifo among ties" (100 :: List.init 10 Fun.id) (drain_eheap h)

let test_eheap_filter () =
  let h = Eheap.create () in
  (* i * 7 mod 100 is a bijection on 0..99, so every key is unique *)
  for i = 0 to 99 do
    Eheap.push h ~at:(Float.of_int (i * 7 mod 100)) ~seq:i i
  done;
  Eheap.filter_in_place h (fun x -> x mod 2 = 0);
  Alcotest.(check int) "size halved" 50 (Eheap.size h);
  let expected =
    List.init 50 (fun k -> 2 * k)
    |> List.sort (fun a b -> compare (a * 7 mod 100) (b * 7 mod 100))
  in
  Alcotest.(check (list int)) "survivors sorted" expected (drain_eheap h);
  Eheap.filter_in_place h (fun _ -> false);
  Alcotest.(check bool) "filter to empty" true (Eheap.is_empty h)

let prop_eheap_sorted =
  QCheck.Test.make ~name:"event heap pops in (at, seq) order" ~count:200
    QCheck.(list (float_range 0.0 100.0))
    (fun ats ->
      let h = Eheap.create () in
      List.iteri (fun i at -> Eheap.push h ~at ~seq:i i) ats;
      let keyed = List.mapi (fun i at -> (at, i)) ats in
      drain_eheap h = List.map snd (List.sort compare keyed))

(* {2 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  (* draws from the parent must not change the child's stream *)
  let c' = Rng.copy c in
  ignore (Rng.int a 100);
  Alcotest.(check int) "split unaffected" (Rng.int c' 1000) (Rng.int c 1000)

(* Golden splitmix64 outputs: the raw stream for seed 42, across a split.
   These pin the generator's exact bit-level behaviour — any change to the
   core algorithm (or to what [split] consumes from the parent) invalidates
   every recorded trace, golden fixture and published failing seed, so it
   must show up here first. *)
let test_rng_golden () =
  let check = Alcotest.(check int64) in
  let r = Rng.create 42 in
  check "draw 1" 0xaba1321580cecf6aL (Rng.bits64 r);
  check "draw 2" 0x700a26608762924cL (Rng.bits64 r);
  check "draw 3" 0xb3300b9da09ef58fL (Rng.bits64 r);
  check "draw 4" 0xec28dbaf22cac8bdL (Rng.bits64 r);
  let c = Rng.split r in
  check "child draw 1" 0x45f546d5c6a74029L (Rng.bits64 c);
  check "child draw 2" 0x9d65b92950785430L (Rng.bits64 c);
  check "parent after split" 0xba5446c3a7b9204bL (Rng.bits64 r)

(* Parent and child streams after a split should look pairwise independent:
   the sample correlation of matched uniform draws stays near zero. *)
let test_rng_split_uncorrelated () =
  let n = 100_000 in
  let a = Rng.create 42 in
  let b = Rng.split a in
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 and sxy = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.float a 1.0 and y = Rng.float b 1.0 in
    sx := !sx +. x;
    sy := !sy +. y;
    sxx := !sxx +. (x *. x);
    syy := !syy +. (y *. y);
    sxy := !sxy +. (x *. y)
  done;
  let nf = Float.of_int n in
  let cov = (!sxy /. nf) -. (!sx /. nf *. (!sy /. nf)) in
  let var s2 s = (s2 /. nf) -. (s /. nf *. (s /. nf)) in
  let corr = cov /. sqrt (var !sxx !sx *. var !syy !sy) in
  Alcotest.(check bool)
    (Printf.sprintf "correlation %.4f small" corr)
    true
    (Float.abs corr < 0.02)

let test_rng_ranges () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "int_in range" true (v >= 5 && v <= 9);
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. Float.of_int n in
  Alcotest.(check bool) "mean close to 4" true (mean > 3.8 && mean < 4.2)

let test_rng_chance () =
  let r = Rng.create 3 in
  Alcotest.(check bool) "p=0" false (Rng.chance r 0.0);
  Alcotest.(check bool) "p=1" true (Rng.chance r 1.0);
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.chance r 0.3 then incr hits
  done;
  let ratio = Float.of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "p=0.3" true (ratio > 0.27 && ratio < 0.33)

let test_rng_zipf () =
  let r = Rng.create 5 in
  let z = Rng.Zipf.create ~n:100 ~s:1.0 in
  let counts = Array.make 101 0 in
  for _ = 1 to 10_000 do
    let k = Rng.Zipf.draw z r in
    Alcotest.(check bool) "rank in range" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  (* rank 1 must dominate rank 50 under s=1 *)
  Alcotest.(check bool) "skewed" true (counts.(1) > counts.(50) * 5)

(* Golden draw fixtures: the alias table is built deterministically from
   the weights, so a fixed seed pins the exact rank sequence. A change
   here means the sampler's stream moved — every fixed-seed serve run
   with it. *)
let test_rng_zipf_golden () =
  let r = Rng.create 7 in
  let z = Rng.Zipf.create ~n:1000 ~s:1.0 in
  let got = List.init 16 (fun _ -> Rng.Zipf.draw z r) in
  Alcotest.(check (list int)) "n=1000 s=1.0 seed=7"
    [ 247; 2; 431; 2; 9; 183; 462; 2; 22; 3; 2; 27; 987; 54; 12; 2 ]
    got;
  let r = Rng.create 7 in
  let z = Rng.Zipf.create ~n:5 ~s:0.8 in
  let got = List.init 12 (fun _ -> Rng.Zipf.draw z r) in
  Alcotest.(check (list int)) "n=5 s=0.8 seed=7" [ 2; 3; 3; 3; 4; 1; 3; 1; 5; 3; 3; 5 ] got

(* The alias table must reproduce the exact Zipf mass function, not just
   "something skewed": compare rank-1/2/10 frequencies against 1/(r^s H)
   within Monte-Carlo tolerance. *)
let test_rng_zipf_exactness () =
  let n = 1000 and s = 1.0 in
  let h = ref 0.0 in
  for r = 1 to n do
    h := !h +. (1.0 /. (Float.of_int r ** s))
  done;
  let z = Rng.Zipf.create ~n ~s in
  let r = Rng.create 123 in
  let trials = 200_000 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to trials do
    let k = Rng.Zipf.draw z r in
    counts.(k) <- counts.(k) + 1
  done;
  List.iter
    (fun rank ->
      let expect = 1.0 /. ((Float.of_int rank ** s) *. !h) in
      let got = Float.of_int counts.(rank) /. Float.of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d frequency" rank)
        true
        (Float.abs (got -. expect) < 0.004))
    [ 1; 2; 10 ]

let test_rng_sample () =
  let r = Rng.create 11 in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample r 5 xs in
  Alcotest.(check int) "size" 5 (List.length s);
  Alcotest.(check int) "no dup" 5 (List.length (List.sort_uniq Int.compare s));
  Alcotest.(check (list int)) "all when k>=n" xs (Rng.sample r 30 xs)

let prop_pareto_support =
  QCheck.Test.make ~name:"pareto >= scale" ~count:500 QCheck.(int_bound 10_000)
    (fun seed ->
      let r = Rng.create seed in
      Rng.pareto r ~scale:2.0 ~shape:1.5 >= 2.0)

(* {2 Engine basics} *)

let test_engine_schedule_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log));
  ignore (Engine.run e);
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel e id;
  Engine.cancel e id;
  ignore (Engine.run e);
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "no pending" 0 (Engine.pending_events e)

let test_engine_cancel_after_fire () =
  (* regression: cancelling an event that already fired used to decrement
     the live-event count and leak a tombstone; with the flag-based cancel
     it must be a strict no-op *)
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> ()));
  ignore (Engine.run ~until:1.5 e);
  Alcotest.(check bool) "fired" true !fired;
  Engine.cancel e id;
  Engine.cancel e id;
  Alcotest.(check int) "accounting undisturbed" 1 (Engine.pending_events e);
  ignore (Engine.run e);
  Alcotest.(check int) "drained" 0 (Engine.pending_events e)

let test_engine_cancel_churn () =
  (* heavy create-then-cancel churn (the RPC-timeout pattern) must not
     bloat the queue or perturb the run: only the survivor fires *)
  let e = Engine.create () in
  for i = 1 to 10_000 do
    let id = Engine.schedule e ~delay:(100.0 +. Float.of_int (i land 63)) (fun () -> ()) in
    Engine.cancel e id
  done;
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  Alcotest.(check int) "one pending" 1 (Engine.pending_events e);
  ignore (Engine.run e);
  Alcotest.(check int) "survivor fired" 1 !fired;
  check_float "clock stops at survivor" 1.0 (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:5.0 (fun () -> incr fired));
  ignore (Engine.run ~until:2.0 e);
  Alcotest.(check int) "only first" 1 !fired;
  check_float "clock clamped" 2.0 (Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check int) "rest" 2 !fired

let test_engine_run_until_cancelled_head () =
  (* regression: a cancelled event sitting at the heap head with
     at <= limit used to pass [run ~until]'s limit check, after which
     [step] skipped the tombstone and fired the next live event past the
     limit, dragging the clock with it *)
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:10.0 (fun () -> fired := true));
  Engine.cancel e id;
  ignore (Engine.run ~until:2.0 e);
  Alcotest.(check bool) "late event not fired" false !fired;
  check_float "clock clamped to limit" 2.0 (Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check bool) "fires once resumed" true !fired;
  check_float "clock at late event" 10.0 (Engine.now e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         times := Engine.now e :: !times;
         ignore (Engine.schedule e ~delay:2.0 (fun () -> times := Engine.now e :: !times))));
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "times" [ 1.0; 3.0 ] (List.rev !times)

(* {2 Processes} *)

let test_proc_sleep () =
  let e = Engine.create () in
  let t_end = ref 0.0 in
  ignore
    (Engine.spawn e (fun () ->
         Engine.sleep 1.5;
         Engine.sleep 2.5;
         t_end := Engine.now e));
  ignore (Engine.run e);
  check_float "slept" 4.0 !t_end;
  Alcotest.(check (list reject)) "no crash" [] (List.map snd (Engine.crashed e))

let test_proc_concurrent () =
  let e = Engine.create () in
  let log = ref [] in
  let mk name d = ignore (Engine.spawn e (fun () -> Engine.sleep d; log := name :: !log)) in
  mk "slow" 3.0;
  mk "fast" 1.0;
  mk "mid" 2.0;
  ignore (Engine.run e);
  Alcotest.(check (list string)) "interleaved" [ "fast"; "mid"; "slow" ] (List.rev !log)

let test_proc_kill_while_sleeping () =
  let e = Engine.create () in
  let cleaned = ref false and finished = ref false in
  let p =
    Engine.spawn e (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
            Engine.sleep 10.0;
            finished := true))
  in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> Engine.kill e p));
  ignore (Engine.run e);
  Alcotest.(check bool) "cleanup ran" true !cleaned;
  Alcotest.(check bool) "body did not finish" false !finished;
  Alcotest.(check bool) "dead" false (Engine.alive p);
  check_float "killed at 1s, not 10s" 1.0 (Engine.now e)

let test_proc_kill_before_start () =
  let e = Engine.create () in
  let ran = ref false in
  let exited = ref false in
  let p = Engine.spawn e (fun () -> ran := true) in
  Engine.on_exit p (fun () -> exited := true);
  Engine.kill e p;
  ignore (Engine.run e);
  Alcotest.(check bool) "never ran" false !ran;
  Alcotest.(check bool) "exit hook ran" true !exited

let test_proc_self_kill () =
  let e = Engine.create () in
  let after = ref false in
  ignore
    (Engine.spawn e (fun () ->
         let self = Engine.self () in
         Engine.kill e self;
         after := true));
  ignore (Engine.run e);
  Alcotest.(check bool) "nothing after self-kill" false !after;
  Alcotest.(check int) "not a crash" 0 (List.length (Engine.crashed e))

(* The untraced engine recycles a proc's timer event record across
   consecutive sleeps. Kill a proc whose record has been recycled several
   times while its timer is pending: cleanup must run, the tombstoned
   record must not resurrect, and an unrelated proc must be unaffected. *)
let test_proc_kill_recycled_timer () =
  let e = Engine.create () in
  let cleaned = ref false and finished = ref false and other = ref 0 in
  let p =
    Engine.spawn e (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
            (* several sleeps so the timer record is a recycled one *)
            for _ = 1 to 5 do
              Engine.sleep 0.5
            done;
            Engine.sleep 10.0;
            finished := true))
  in
  ignore (Engine.spawn e (fun () -> for _ = 1 to 8 do Engine.sleep 1.0; incr other done));
  ignore (Engine.schedule e ~delay:4.0 (fun () -> Engine.kill e p));
  ignore (Engine.run e);
  Alcotest.(check bool) "cleanup ran" true !cleaned;
  Alcotest.(check bool) "body did not finish" false !finished;
  Alcotest.(check bool) "dead" false (Engine.alive p);
  Alcotest.(check int) "other proc unaffected" 8 !other;
  check_float "ran to other proc's end" 8.0 (Engine.now e);
  Alcotest.(check (list reject)) "no crash" [] (List.map snd (Engine.crashed e))

(* Kill landing in the window between a sleep timer firing and the
   same-instant resume running: the timer (scheduled at spawn time) fires
   at t=1 and queues the resume; the kill event carries a sequence number
   between the two, so it runs while the proc is resume-pending. The
   pending resume must then be a no-op, not a resurrection. *)
let test_proc_kill_resume_pending () =
  let e = Engine.create () in
  let cleaned = ref false and finished = ref false in
  let p =
    Engine.spawn e (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
            Engine.sleep 1.0;
            finished := true))
  in
  (* the helper's start event runs after [p] has begun its sleep, so this
     kill event's sequence number sits between p's timer and the resume
     the timer will enqueue — at t=1 the timer fires first, then the kill,
     then the orphaned resume *)
  ignore
    (Engine.spawn e (fun () ->
         ignore (Engine.schedule e ~delay:1.0 (fun () -> Engine.kill e p))));
  ignore (Engine.run e);
  Alcotest.(check bool) "cleanup ran" true !cleaned;
  Alcotest.(check bool) "body did not finish" false !finished;
  Alcotest.(check bool) "dead" false (Engine.alive p);
  Alcotest.(check (list reject)) "no crash" [] (List.map snd (Engine.crashed e))

(* Zero-length sleeps take the same-instant ring; several procs looping on
   them must keep strict FIFO interleaving even as each proc's recycled
   record re-enters the ring every iteration. *)
let test_proc_sleep_zero_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for id = 0 to 2 do
    ignore
      (Engine.spawn e (fun () ->
           for round = 0 to 3 do
             Engine.sleep 0.0;
             log := (id, round) :: !log
           done))
  done;
  ignore (Engine.run e);
  let expect =
    List.concat_map (fun round -> List.map (fun id -> (id, round)) [ 0; 1; 2 ]) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (pair int int))) "round-robin FIFO" expect (List.rev !log);
  check_float "no time passed" 0.0 (Engine.now e)

let test_proc_exit_hooks_order () =
  let e = Engine.create () in
  let log = ref [] in
  let p = Engine.spawn e (fun () -> Engine.sleep 1.0) in
  Engine.on_exit p (fun () -> log := 1 :: !log);
  Engine.on_exit p (fun () -> log := 2 :: !log);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "registration order" [ 1; 2 ] (List.rev !log);
  (* registering after death runs immediately *)
  let now = ref false in
  Engine.on_exit p (fun () -> now := true);
  Alcotest.(check bool) "immediate" true !now

let test_proc_crash_recorded () =
  let e = Engine.create () in
  ignore (Engine.spawn e (fun () -> failwith "boom"));
  ignore (Engine.run e);
  match Engine.crashed e with
  | [ (_, Failure m) ] -> Alcotest.(check string) "msg" "boom" m
  | _ -> Alcotest.fail "expected one crash"

let test_suspend_resolve_once () =
  let e = Engine.create () in
  let resolver = ref None in
  let got = ref [] in
  ignore
    (Engine.spawn e (fun () ->
         let v = Engine.suspend_ (fun resolve -> resolver := Some resolve) in
         got := v :: !got));
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         match !resolver with
         | Some r ->
             r (Ok 1);
             r (Ok 2)
         | None -> Alcotest.fail "no resolver"));
  ignore (Engine.run e);
  Alcotest.(check (list int)) "only first resolve" [ 1 ] !got

let test_suspend_error () =
  let e = Engine.create () in
  let caught = ref false in
  ignore
    (Engine.spawn e (fun () ->
         try ignore (Engine.suspend_ (fun resolve -> resolve (Error Not_found)))
         with Not_found -> caught := true));
  ignore (Engine.run e);
  Alcotest.(check bool) "exn delivered" true !caught

(* {2 Ivar} *)

let test_ivar_basic () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  ignore (Engine.spawn e (fun () -> got := Ivar.read iv));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> Ivar.fill iv 42));
  ignore (Engine.run e);
  Alcotest.(check int) "read" 42 !got;
  Alcotest.(check bool) "filled" true (Ivar.is_filled iv);
  Alcotest.(check bool) "double fill refused" false (Ivar.try_fill iv 1)

let test_ivar_read_after_fill () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill iv 7;
  let got = ref 0 in
  ignore (Engine.spawn e (fun () -> got := Ivar.read iv));
  ignore (Engine.run e);
  Alcotest.(check int) "immediate" 7 !got

let test_ivar_timeout () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got = ref (Some 1) in
  ignore (Engine.spawn e (fun () -> got := Ivar.read_timeout iv 1.0));
  ignore (Engine.run e);
  Alcotest.(check (option int)) "timed out" None !got;
  check_float "timeout respected" 1.0 (Engine.now e)

let test_ivar_timeout_beaten () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got = ref None in
  ignore (Engine.spawn e (fun () -> got := Ivar.read_timeout iv 5.0));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> Ivar.fill iv 9));
  ignore (Engine.run e);
  Alcotest.(check (option int)) "value wins" (Some 9) !got

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    ignore (Engine.spawn e (fun () -> sum := !sum + Ivar.read iv))
  done;
  ignore (Engine.schedule e ~delay:1.0 (fun () -> Ivar.fill iv 10));
  ignore (Engine.run e);
  Alcotest.(check int) "all woken" 30 !sum

(* {2 Channel} *)

let test_channel_fifo () =
  let e = Engine.create () in
  let c = Channel.create () in
  let got = ref [] in
  ignore
    (Engine.spawn e (fun () ->
         for _ = 1 to 3 do
           got := Channel.recv c :: !got
         done));
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         Channel.send c 1;
         Channel.send c 2;
         Channel.send c 3));
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_channel_buffered () =
  let e = Engine.create () in
  let c = Channel.create () in
  Channel.send c 5;
  Alcotest.(check int) "buffered" 1 (Channel.length c);
  let got = ref 0 in
  ignore (Engine.spawn e (fun () -> got := Channel.recv c));
  ignore (Engine.run e);
  Alcotest.(check int) "got" 5 !got;
  Alcotest.(check int) "drained" 0 (Channel.length c)

let test_channel_timeout_skips_dead_receiver () =
  let e = Engine.create () in
  let c = Channel.create () in
  let first = ref (Some 99) and second = ref 0 in
  ignore (Engine.spawn e (fun () -> first := Channel.recv_timeout c 1.0));
  ignore (Engine.spawn e (fun () -> second := Channel.recv c));
  (* send after the first receiver timed out: must reach the second *)
  ignore (Engine.schedule e ~delay:2.0 (fun () -> Channel.send c 7));
  ignore (Engine.run e);
  Alcotest.(check (option int)) "first timed out" None !first;
  Alcotest.(check int) "second got it" 7 !second

let test_channel_try_recv () =
  let c : int Channel.t = Channel.create () in
  Alcotest.(check (option int)) "empty" None (Channel.try_recv c);
  Channel.send c 1;
  Alcotest.(check (option int)) "some" (Some 1) (Channel.try_recv c)

let test_channel_competing_receivers () =
  let e = Engine.create () in
  let c = Channel.create () in
  let got = ref [] in
  (* bind the blocking recv before reading [!got]: another process may have
     appended while we were suspended (the shared-state pitfall of
     cooperative threads that the paper discusses in Section 4) *)
  for i = 1 to 2 do
    ignore
      (Engine.spawn e (fun () ->
           let v = Channel.recv c in
           got := (i, v) :: !got))
  done;
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         Channel.send c "x";
         Channel.send c "y"));
  ignore (Engine.run e);
  let sorted = List.sort compare !got in
  Alcotest.(check (list (pair int string))) "each got one" [ (1, "x"); (2, "y") ] sorted

(* Determinism of a whole run: same seed, same interleavings. *)
let test_determinism () =
  let run_once seed =
    let e = Engine.create ~seed () in
    let log = Buffer.create 64 in
    let r = Engine.rng e in
    for i = 1 to 5 do
      ignore
        (Engine.spawn e (fun () ->
             Engine.sleep (Rng.float r 10.0);
             Buffer.add_string log (Printf.sprintf "%d@%.6f;" i (Engine.now e))))
    done;
    ignore (Engine.run e);
    Buffer.contents log
  in
  Alcotest.(check string) "identical runs" (run_once 9) (run_once 9);
  Alcotest.(check bool) "seed changes run" true (run_once 9 <> run_once 10)

let prop_schedule_cancel_accounting =
  QCheck.Test.make ~name:"fired events = scheduled - cancelled" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 30) (float_range 0.0 100.0)) (int_bound 30))
    (fun (delays, to_cancel) ->
      let e = Engine.create () in
      let fired = ref 0 in
      let ids = List.map (fun d -> Engine.schedule e ~delay:d (fun () -> incr fired)) delays in
      let cancelled =
        List.filteri (fun i _ -> i < to_cancel) ids
      in
      List.iter (Engine.cancel e) cancelled;
      (* double-cancel must not double-count *)
      List.iter (Engine.cancel e) cancelled;
      ignore (Engine.run e);
      !fired = List.length delays - List.length cancelled && Engine.pending_events e = 0)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_eheap_sorted; prop_pareto_support; prop_schedule_cancel_accounting ]

let () =
  Alcotest.run "splay_sim"
    [
      ( "eheap",
        [
          Alcotest.test_case "order" `Quick test_eheap_order;
          Alcotest.test_case "empty" `Quick test_eheap_empty;
          Alcotest.test_case "fifo ties" `Quick test_eheap_fifo_ties;
          Alcotest.test_case "filter_in_place" `Quick test_eheap_filter;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "golden stream" `Quick test_rng_golden;
          Alcotest.test_case "split uncorrelated" `Quick test_rng_split_uncorrelated;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "chance" `Quick test_rng_chance;
          Alcotest.test_case "zipf" `Quick test_rng_zipf;
          Alcotest.test_case "zipf golden" `Quick test_rng_zipf_golden;
          Alcotest.test_case "zipf exactness" `Quick test_rng_zipf_exactness;
          Alcotest.test_case "sample" `Quick test_rng_sample;
        ] );
      ( "engine",
        [
          Alcotest.test_case "schedule order" `Quick test_engine_schedule_order;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire;
          Alcotest.test_case "cancel churn" `Quick test_engine_cancel_churn;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "run until with cancelled head" `Quick
            test_engine_run_until_cancelled_head;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        ] );
      ( "process",
        [
          Alcotest.test_case "sleep" `Quick test_proc_sleep;
          Alcotest.test_case "concurrent" `Quick test_proc_concurrent;
          Alcotest.test_case "kill while sleeping" `Quick test_proc_kill_while_sleeping;
          Alcotest.test_case "kill recycled timer" `Quick test_proc_kill_recycled_timer;
          Alcotest.test_case "kill resume pending" `Quick test_proc_kill_resume_pending;
          Alcotest.test_case "sleep zero fifo" `Quick test_proc_sleep_zero_fifo;
          Alcotest.test_case "kill before start" `Quick test_proc_kill_before_start;
          Alcotest.test_case "self kill" `Quick test_proc_self_kill;
          Alcotest.test_case "exit hooks order" `Quick test_proc_exit_hooks_order;
          Alcotest.test_case "crash recorded" `Quick test_proc_crash_recorded;
          Alcotest.test_case "resolve once" `Quick test_suspend_resolve_once;
          Alcotest.test_case "suspend error" `Quick test_suspend_error;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "basic" `Quick test_ivar_basic;
          Alcotest.test_case "read after fill" `Quick test_ivar_read_after_fill;
          Alcotest.test_case "timeout" `Quick test_ivar_timeout;
          Alcotest.test_case "timeout beaten" `Quick test_ivar_timeout_beaten;
          Alcotest.test_case "multiple readers" `Quick test_ivar_multiple_readers;
        ] );
      ( "channel",
        [
          Alcotest.test_case "fifo" `Quick test_channel_fifo;
          Alcotest.test_case "buffered" `Quick test_channel_buffered;
          Alcotest.test_case "timeout skips dead receiver" `Quick test_channel_timeout_skips_dead_receiver;
          Alcotest.test_case "try_recv" `Quick test_channel_try_recv;
          Alcotest.test_case "competing receivers" `Quick test_channel_competing_receivers;
        ] );
      ("properties", qsuite);
    ]
