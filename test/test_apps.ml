(* Integration tests for the overlay applications, each running on a real
   deployment through the controller. *)

open Splay_sim
open Splay_net
open Splay_runtime
open Splay_ctl
module Apps = Splay_apps

let with_platform ?(hosts = 10) ?(seed = 31) ?(until = 36000.0) f =
  let eng = Engine.create ~seed () in
  let tb0 = Testbed.cluster ~n:hosts (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init hosts Fun.id) in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             (* tear the platform down so the event queue drains *)
             List.iter Daemon.shutdown daemons;
             (* defer: stopping the controller env from inside this very
                process would self-kill through the finally *)
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () -> f eng net ctl)));
  ignore (Engine.run ~until eng);
  match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e)

(* The node with the smallest id >= key (cyclically) among [ids] — ground
   truth for "who is responsible for key". *)
let expected_responsible ids key ~modulus =
  let ids = List.sort_uniq Int.compare ids in
  let after = List.filter (fun i -> i >= key) ids in
  match (after, ids) with
  | i :: _, _ -> i
  | [], i :: _ -> i
  | [], [] -> invalid_arg "no ids"
  |> fun i -> i mod modulus

(* {2 Chord (base)} *)

let deploy_chord ctl ~n ~config =
  let nodes = ref [] in
  let dep =
    Controller.deploy ctl ~name:"chord"
      ~main:(Apps.Chord.app ~config ~register:(fun c -> nodes := c :: !nodes))
      (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
  in
  (dep, nodes)

let chord_test_config =
  { Apps.Chord.default_config with m = 16; stabilize_interval = 2.0; join_delay_per_position = 0.5 }

let test_chord_ring_converges () =
  with_platform (fun _ _ ctl ->
      let n = 20 in
      let _dep, nodes = deploy_chord ctl ~n ~config:chord_test_config in
      (* staggered joins: n*0.5s, then several stabilization rounds *)
      Env.sleep (Float.of_int n *. 0.5 +. 120.0);
      Alcotest.(check int) "all instances registered" n (List.length !nodes);
      let ring = Apps.Chord.ring_of !nodes in
      Alcotest.(check int) "ring visits every node once" n (List.length ring);
      (* every node has a predecessor after convergence *)
      List.iter
        (fun c ->
          Alcotest.(check bool) "has predecessor" true (Apps.Chord.predecessor c <> None))
        !nodes)

let test_chord_lookup_correct () =
  with_platform (fun _ _ ctl ->
      let n = 16 in
      let _dep, nodes = deploy_chord ctl ~n ~config:chord_test_config in
      Env.sleep (Float.of_int n *. 0.5 +. 150.0);
      let ids = List.map Apps.Chord.id !nodes in
      let rng = Rng.create 99 in
      let origin = List.hd !nodes in
      for _ = 1 to 50 do
        let key = Rng.int rng (1 lsl 16) in
        match Apps.Chord.lookup origin key with
        | Some (resp, hops) ->
            Alcotest.(check int)
              (Printf.sprintf "responsible for %d" key)
              (expected_responsible ids key ~modulus:(1 lsl 16))
              resp.Apps.Node.id;
            Alcotest.(check bool) "hops bounded" true (hops <= n)
        | None -> Alcotest.fail "lookup failed on a stable ring"
      done)

let test_chord_hops_logarithmic () =
  with_platform ~hosts:16 (fun _ _ ctl ->
      let n = 48 in
      let _dep, nodes = deploy_chord ctl ~n ~config:chord_test_config in
      (* long enough for fingers to populate: m=16 fingers, one per 2s round *)
      Env.sleep (Float.of_int n *. 0.5 +. 2.0 *. 16.0 *. 3.0 +. 60.0);
      let rng = Rng.create 7 in
      let total_hops = ref 0 and count = ref 0 in
      List.iteri
        (fun i origin ->
          if i < 12 then
            for _ = 1 to 10 do
              match Apps.Chord.lookup origin (Rng.int rng (1 lsl 16)) with
              | Some (_, hops) ->
                  total_hops := !total_hops + hops;
                  incr count
              | None -> Alcotest.fail "lookup failed"
            done)
        !nodes;
      let avg = Float.of_int !total_hops /. Float.of_int !count in
      (* paper: average below (log2 N)/2 = 2.79 for N=48 *)
      Alcotest.(check bool)
        (Printf.sprintf "avg hops %.2f below log2(N)" avg)
        true
        (avg < log (Float.of_int n) /. log 2.0))

let test_chord_fingers_exact () =
  with_platform (fun _ _ ctl ->
      let n = 16 in
      let _dep, nodes = deploy_chord ctl ~n ~config:chord_test_config in
      (* several full finger sweeps on a stable ring: m=16 fingers, one
         refresh per 2 s round *)
      Env.sleep ((Float.of_int n *. 0.5) +. (2.0 *. 16.0 *. 3.0) +. 60.0);
      let ids = List.map Apps.Chord.id !nodes in
      let modulus = 1 lsl 16 in
      let exact = ref 0 and total = ref 0 in
      List.iter
        (fun c ->
          Array.iteri
            (fun i f ->
              match f with
              | Some node ->
                  incr total;
                  let target = (Apps.Chord.id c + (1 lsl i)) mod modulus in
                  if node.Apps.Node.id = expected_responsible ids target ~modulus then incr exact
              | None -> ())
            (Apps.Chord.fingers c))
        !nodes;
      (* the finger invariant: finger[i] = successor(n + 2^(i-1)) *)
      Alcotest.(check bool)
        (Printf.sprintf "fingers exact after sweeps (%d/%d)" !exact !total)
        true
        (Float.of_int !exact /. Float.of_int !total > 0.98))

(* Warm start: a ring built by [assemble] must route exactly like a
   converged joined ring, with no periodics and no join traffic. *)
let test_chord_assemble_routes_correctly () =
  let n = 500 in
  let config = { Apps.Chord.default_config with m = 16 } in
  let md = 1 lsl 16 in
  let eng = Engine.create ~seed:77 () in
  let tb = Testbed.synthetic ~hosts:n (Engine.rng eng) in
  let net = Net.create eng tb in
  let spacing = md / n in
  let ring =
    Array.init n (fun i -> Apps.Node.make ~id:(i * spacing) ~addr:(Addr.make i 9000))
  in
  let nodes = Array.make n None in
  for i = 0 to n - 1 do
    let env = Env.create net ~me:ring.(i).Apps.Node.addr in
    Apps.Chord.assemble ~config ~ring ~index:i ~register:(fun c -> nodes.(i) <- Some c) env
  done;
  let ids = Array.to_list (Array.map (fun nd -> nd.Apps.Node.id) ring) in
  let rng = Rng.create 5 in
  let checked = ref 0 in
  ignore
    (Env.thread
       (match nodes.(0) with
       | Some c -> Apps.Chord.node_env c
       | None -> assert false)
       ~name:"assemble-lookups"
       (fun () ->
         for _ = 1 to 100 do
           let key = Rng.int rng md in
           let origin = match nodes.(Rng.int rng n) with Some c -> c | None -> assert false in
           match Apps.Chord.lookup origin key with
           | Some (owner, hops) ->
               incr checked;
               Alcotest.(check int) "routes to the responsible node"
                 (expected_responsible ids key ~modulus:md)
                 owner.Apps.Node.id;
               Alcotest.(check bool) "hop count is logarithmic-ish" true (hops <= 2 * 16)
           | None -> Alcotest.fail "lookup failed on a failure-free assembled ring"
         done));
  ignore (Engine.run ~until:3600.0 eng);
  Alcotest.(check int) "all lookups ran" 100 !checked;
  (* structural spot checks: neighbours and first finger agree with the ring *)
  (match nodes.(3) with
  | Some c ->
      Alcotest.(check (option int)) "successor is the next ring entry"
        (Some ring.(4).Apps.Node.id)
        (Option.map (fun nd -> nd.Apps.Node.id) (Apps.Chord.successor c));
      Alcotest.(check (option int)) "predecessor is the previous ring entry"
        (Some ring.(2).Apps.Node.id)
        (Option.map (fun nd -> nd.Apps.Node.id) (Apps.Chord.predecessor c))
  | None -> Alcotest.fail "node 3 not registered");
  (* a joined ring keeps 3 periodics per node alive forever; an assembled
     ring's queue must drain completely once the lookups finish *)
  Alcotest.(check int) "assemble started no periodic processes" 0 (Engine.pending_events eng)

(* {2 Chord (fault-tolerant)} *)

let deploy_chord_ft ctl ~n ~config =
  let nodes = ref [] in
  let dep =
    Controller.deploy ctl ~name:"chord-ft"
      ~main:(Apps.Chord_ft.app ~config ~register:(fun c -> nodes := c :: !nodes))
      (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
  in
  (dep, nodes)

let chord_ft_test_config =
  {
    Apps.Chord_ft.default_config with
    m = 16;
    stabilize_interval = 2.0;
    join_delay_per_position = 0.5;
    rpc_timeout = 5.0;
  }

let test_chord_ft_converges_and_replicates () =
  with_platform (fun _ _ ctl ->
      let n = 16 in
      let _dep, nodes = deploy_chord_ft ctl ~n ~config:chord_ft_test_config in
      Env.sleep (Float.of_int n *. 0.5 +. 120.0);
      List.iter
        (fun c ->
          Alcotest.(check bool) "has a full leafset" true
            (List.length (Apps.Chord_ft.successors c) >= 4))
        !nodes)

let test_chord_ft_survives_failures () =
  with_platform (fun _ _ ctl ->
      let n = 20 in
      let dep, nodes = deploy_chord_ft ctl ~n ~config:chord_ft_test_config in
      Env.sleep (Float.of_int n *. 0.5 +. 120.0);
      (* crash a third of the network *)
      let members = Controller.live_members dep in
      List.iteri (fun i (_, a, _) -> if i mod 3 = 0 then Controller.crash_node dep a) members;
      (* let the suspicion/pruning machinery converge *)
      Env.sleep 180.0;
      let live = List.filter (fun c -> not (Apps.Chord_ft.is_stopped c)) !nodes in
      Alcotest.(check bool) "some nodes survived" true (List.length live >= 10);
      let live_ids = List.map Apps.Chord_ft.id live in
      let rng = Rng.create 5 in
      let failures = ref 0 and wrong = ref 0 in
      let origin = List.hd live in
      for _ = 1 to 40 do
        let key = Rng.int rng (1 lsl 16) in
        match Apps.Chord_ft.lookup origin key with
        | Some (resp, _) ->
            if resp.Apps.Node.id <> expected_responsible live_ids key ~modulus:(1 lsl 16) then
              incr wrong
        | None -> incr failures
      done;
      Alcotest.(check int) "no failed lookups after recovery" 0 !failures;
      Alcotest.(check bool) (Printf.sprintf "few wrong owners (%d/40)" !wrong) true (!wrong <= 2);
      (* the pruning machinery actually fired *)
      let total_suspected =
        List.fold_left (fun acc c -> acc + Apps.Chord_ft.suspected_count c) 0 live
      in
      Alcotest.(check bool) "suspects pruned" true (total_suspected > 0))

(* {2 Pastry} *)

let pastry_test_config =
  {
    Apps.Pastry.default_config with
    bits = 16;
    stabilize_interval = 2.0;
    rpc_timeout = 5.0;
    join_delay_per_position = 0.3;
  }

let deploy_pastry ?(config = pastry_test_config) ctl ~n =
  let nodes = ref [] in
  let dep =
    Controller.deploy ctl ~name:"pastry"
      ~main:(Apps.Pastry.app ~config ~register:(fun c -> nodes := c :: !nodes))
      (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
  in
  (dep, nodes)

(* Pastry's owner is the numerically closest id on the ring. *)
let pastry_owner ids key ~modulus =
  let d a b =
    let cw = (b - a + modulus) mod modulus in
    min cw (modulus - cw)
  in
  List.fold_left (fun best i -> if d i key < d best key then i else best) (List.hd ids) ids

let test_pastry_converges () =
  with_platform (fun _ _ ctl ->
      let n = 25 in
      let _dep, nodes = deploy_pastry ctl ~n in
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      Alcotest.(check int) "all registered" n (List.length !nodes);
      List.iter
        (fun p ->
          Alcotest.(check bool) "leafset populated" true (List.length (Apps.Pastry.leafset p) >= 8);
          Alcotest.(check bool) "routing table populated" true
            (List.length (Apps.Pastry.table_entries p) >= 2))
        !nodes)

let test_pastry_lookup_correct () =
  with_platform (fun _ _ ctl ->
      let n = 20 in
      let _dep, nodes = deploy_pastry ctl ~n in
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      let ids = List.map Apps.Pastry.id !nodes in
      let rng = Rng.create 13 in
      List.iteri
        (fun i origin ->
          if i < 5 then
            for _ = 1 to 20 do
              let key = Rng.int rng (1 lsl 16) in
              match Apps.Pastry.lookup origin key with
              | Some (owner, hops) ->
                  Alcotest.(check int)
                    (Printf.sprintf "owner of %d" key)
                    (pastry_owner ids key ~modulus:(1 lsl 16))
                    owner.Apps.Node.id;
                  Alcotest.(check bool) "hops small" true (hops <= 8)
              | None -> Alcotest.fail "lookup failed on stable overlay"
            done)
        !nodes)

let test_pastry_survives_churn () =
  with_platform (fun _ _ ctl ->
      let n = 24 in
      let dep, nodes = deploy_pastry ctl ~n in
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      let members = Controller.live_members dep in
      List.iteri (fun i (_, a, _) -> if i mod 4 = 0 then Controller.crash_node dep a) members;
      Env.sleep 120.0;
      let live = List.filter (fun p -> not (Apps.Pastry.is_stopped p)) !nodes in
      let live_ids = List.map Apps.Pastry.id live in
      let rng = Rng.create 17 in
      let failures = ref 0 and wrong = ref 0 and total = 40 in
      let origin = List.hd live in
      for _ = 1 to total do
        let key = Rng.int rng (1 lsl 16) in
        match Apps.Pastry.lookup origin key with
        | Some (owner, _) ->
            if owner.Apps.Node.id <> pastry_owner live_ids key ~modulus:(1 lsl 16) then incr wrong
        | None -> incr failures
      done;
      (* Fig. 10 shows recovery takes minutes; a small residual right after
         repair is the expected regime, a large one is a routing bug *)
      Alcotest.(check bool) (Printf.sprintf "few failures after repair (%d/40)" !failures) true
        (!failures <= 2);
      Alcotest.(check bool) (Printf.sprintf "few wrong owners (%d)" !wrong) true (!wrong <= 2))

let test_pastry_proximity_prefers_close_entries () =
  (* on a testbed with distance structure, proximity-aware tables should
     pick lower-RTT entries than proximity-blind ones *)
  let run proximity =
    let avg = ref 0.0 in
    let eng = Engine.create ~seed:77 () in
    let tb0 = Testbed.planetlab ~n:40 (Engine.rng eng) in
    let tb, ctl_host = Testbed.with_extra_host tb0 in
    let net = Net.create eng tb in
    let ctl = Controller.create net ~host:ctl_host in
    let daemons = Controller.boot_daemons ctl (List.init 40 Fun.id) in
    ignore
      (Env.thread (Controller.env ctl) (fun () ->
           Fun.protect
             ~finally:(fun () ->
               List.iter Daemon.shutdown daemons;
               ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
             (fun () ->
               let nodes = ref [] in
               let config = { pastry_test_config with proximity } in
               ignore
                 (Controller.deploy ctl ~name:"pastry"
                    ~main:(Apps.Pastry.app ~config ~register:(fun c -> nodes := c :: !nodes))
                    (Descriptor.make ~bootstrap:(Descriptor.Head 1) 40));
               Env.sleep 180.0;
               let total = ref 0.0 and count = ref 0 in
               List.iter
                 (fun p ->
                   List.iter
                     (fun e ->
                       total :=
                         !total
                         +. Net.base_rtt net (Apps.Pastry.addr p).Addr.host
                              e.Apps.Node.addr.Addr.host;
                       incr count)
                     (Apps.Pastry.table_entries p))
                 !nodes;
               avg := !total /. Float.of_int (max 1 !count))));
    ignore (Engine.run ~until:36000.0 eng);
    !avg
  in
  let with_prox = run true and without = run false in
  Alcotest.(check bool)
    (Printf.sprintf "proximity lowers entry RTT (%.4f < %.4f)" with_prox without)
    true (with_prox < without)

(* Warm start: an overlay built by [Pastry.assemble] must route every key
   to the numerically closest id, with no periodics and no join traffic
   — the same contract the chord assemble test pins. *)
let test_pastry_assemble_routes_correctly () =
  let n = 500 in
  let config = { Apps.Pastry.default_config with bits = 16 } in
  let md = 1 lsl 16 in
  let eng = Engine.create ~seed:77 () in
  let tb = Testbed.synthetic ~hosts:n (Engine.rng eng) in
  let net = Net.create eng tb in
  (* odd spacing: no key is ever exactly equidistant from two ids, so the
     expected owner is unique *)
  let spacing = md / n in
  let ring =
    Array.init n (fun i -> Apps.Node.make ~id:(i * spacing) ~addr:(Addr.make i 9000))
  in
  let nodes = Array.make n None in
  for i = 0 to n - 1 do
    let env = Env.create net ~me:ring.(i).Apps.Node.addr in
    Apps.Pastry.assemble ~config ~ring ~index:i ~register:(fun p -> nodes.(i) <- Some p) env
  done;
  let ids = Array.to_list (Array.map (fun nd -> nd.Apps.Node.id) ring) in
  let rng = Rng.create 5 in
  let checked = ref 0 in
  ignore
    (Env.thread
       (match nodes.(0) with
       | Some p -> Apps.Pastry.node_env p
       | None -> assert false)
       ~name:"assemble-lookups"
       (fun () ->
         for _ = 1 to 100 do
           let key = Rng.int rng md in
           let origin = match nodes.(Rng.int rng n) with Some p -> p | None -> assert false in
           match Apps.Pastry.lookup origin key with
           | Some (owner, hops) ->
               incr checked;
               Alcotest.(check int) "routes to the numerically closest node"
                 (pastry_owner ids key ~modulus:md)
                 owner.Apps.Node.id;
               Alcotest.(check bool) "hop count bounded by table depth" true
                 (hops <= 2 * Apps.Pastry.digits config)
           | None -> Alcotest.fail "lookup failed on a failure-free assembled overlay"
         done));
  ignore (Engine.run ~until:3600.0 eng);
  Alcotest.(check int) "all lookups ran" 100 !checked;
  (match nodes.(3) with
  | Some p ->
      Alcotest.(check int) "leafset is the nearest ring neighbours"
        config.Apps.Pastry.leaf_size
        (List.length (Apps.Pastry.leafset p));
      Alcotest.(check bool) "routing table populated" true
        (List.length (Apps.Pastry.table_entries p) >= Apps.Pastry.digits config)
  | None -> Alcotest.fail "node 3 not registered");
  (* assembled overlays start no maintenance: the queue must drain *)
  Alcotest.(check int) "assemble started no periodic processes" 0 (Engine.pending_events eng)

(* {2 Cyclon} *)

let test_cyclon_mixes () =
  with_platform (fun _ _ ctl ->
      let n = 30 in
      let nodes = ref [] in
      let config = { Apps.Cyclon.default_config with period = 2.0; cache_size = 8; shuffle_length = 4 } in
      ignore
        (Controller.deploy ctl ~name:"cyclon"
           ~main:(Apps.Cyclon.app ~config ~register:(fun c -> nodes := c :: !nodes))
           (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
      Env.sleep 120.0;
      Alcotest.(check int) "all registered" n (List.length !nodes);
      List.iter
        (fun c ->
          Alcotest.(check bool) "shuffled" true (Apps.Cyclon.shuffles_done c > 5);
          let nb = Apps.Cyclon.neighbors c in
          Alcotest.(check bool) "cache bounded" true (List.length nb <= 8);
          Alcotest.(check bool) "cache non-trivial" true (List.length nb >= 4);
          List.iter
            (fun x ->
              Alcotest.(check bool) "no self-loop" false
                (Addr.equal x.Apps.Node.addr (Apps.Cyclon.self c).Apps.Node.addr))
            nb)
        !nodes;
      (* the union graph is connected: BFS over undirected edges *)
      let addr_key a = Addr.to_string a in
      let adj = Hashtbl.create 64 in
      let add_edge a b =
        let add x y =
          let l = Option.value ~default:[] (Hashtbl.find_opt adj x) in
          if not (List.mem y l) then Hashtbl.replace adj x (y :: l)
        in
        add a b;
        add b a
      in
      List.iter
        (fun c ->
          let me = addr_key (Apps.Cyclon.self c).Apps.Node.addr in
          List.iter (fun x -> add_edge me (addr_key x.Apps.Node.addr)) (Apps.Cyclon.neighbors c))
        !nodes;
      let visited = Hashtbl.create 64 in
      let rec bfs = function
        | [] -> ()
        | x :: rest ->
            if Hashtbl.mem visited x then bfs rest
            else begin
              Hashtbl.replace visited x ();
              bfs (Option.value ~default:[] (Hashtbl.find_opt adj x) @ rest)
            end
      in
      bfs [ addr_key (Apps.Cyclon.self (List.hd !nodes)).Apps.Node.addr ];
      Alcotest.(check int) "overlay connected" n (Hashtbl.length visited))

(* {2 Epidemic} *)

let test_epidemic_coverage () =
  with_platform (fun _ _ ctl ->
      let n = 40 in
      let nodes = ref [] in
      ignore
        (Controller.deploy ctl ~name:"epidemic"
           ~main:
             (Apps.Epidemic.app
                ~config:{ Apps.Epidemic.fanout = 6; rpc_timeout = 5.0; oneway = false }
                ~register:(fun c -> nodes := c :: !nodes))
           (Descriptor.make ~bootstrap:(Descriptor.Random_subset 12) n));
      Env.sleep 5.0;
      Apps.Epidemic.broadcast (List.hd !nodes) "rumor-1";
      Env.sleep 30.0;
      let covered =
        List.length (List.filter (fun c -> Apps.Epidemic.has_received c "rumor-1") !nodes)
      in
      Alcotest.(check bool)
        (Printf.sprintf "epidemic covers nearly everyone (%d/%d)" covered n)
        true
        (covered >= n - 2);
      (* duplicate rumors are not re-forwarded *)
      Apps.Epidemic.broadcast (List.hd !nodes) "rumor-1";
      Env.sleep 10.0;
      List.iter
        (fun c ->
          Alcotest.(check int) "no duplicate delivery" 1
            (List.length (List.filter (String.equal "rumor-1") (Apps.Epidemic.received c))))
        !nodes)

(* One-way mode: same coverage as the RPC path, but every forward is a
   single notify — no reply traffic, no parked caller fiber per target. *)
let test_epidemic_oneway_coverage () =
  let n = 300 in
  let eng = Engine.create ~seed:91 () in
  let tb = Testbed.synthetic ~hosts:n (Engine.rng eng) in
  let net = Net.create eng tb in
  let addrs = Array.init n (fun i -> Addr.make i 9000) in
  let config = { Apps.Epidemic.fanout = 6; rpc_timeout = 5.0; oneway = true } in
  let nodes = Array.make n None in
  let env0 = ref None in
  for i = 0 to n - 1 do
    (* ring + three long chords: connected, sparse, fixed degree *)
    let peers = List.map (fun s -> addrs.((i + s) mod n)) [ 1; 7; 29; 113 ] in
    let env = Env.create net ~me:addrs.(i) ~nodes:peers in
    if i = 0 then env0 := Some env;
    Apps.Epidemic.app ~config ~register:(fun x -> nodes.(i) <- Some x) env
  done;
  (match (nodes.(0), !env0) with
  | Some origin, Some env ->
      ignore
        (Env.thread env ~name:"rumor-origin" (fun () ->
             Apps.Epidemic.broadcast origin "one-way"))
  | _ -> Alcotest.fail "origin not registered");
  ignore (Engine.run eng);
  let covered =
    Array.fold_left
      (fun acc nd ->
        match nd with
        | Some x when Apps.Epidemic.has_received x "one-way" -> acc + 1
        | _ -> acc)
      0 nodes
  in
  Alcotest.(check bool)
    (Printf.sprintf "one-way flood covers nearly everyone (%d/%d)" covered n)
    true
    (covered >= n - 3);
  (* fire-and-forget really is one-way: every message is a request, so the
     delivered count can't exceed nodes * fanout (no reply packets) *)
  let delivered = Net.messages_sent net - Net.messages_dropped net in
  Alcotest.(check bool)
    (Printf.sprintf "no reply traffic (%d msgs <= %d)" delivered (n * config.fanout))
    true
    (delivered <= n * config.fanout)

(* {2 Distribution trees} *)

let test_trees_structure_and_completion () =
  with_platform (fun _ _ ctl ->
      let n = 15 in
      let nodes = ref [] in
      let config =
        { Apps.Trees.default_config with block_size = 64 * 1024; start_delay = 5.0 }
      in
      ignore
        (Controller.deploy ctl ~name:"trees"
           ~main:
             (Apps.Trees.app ~config ~file_size:(1024 * 1024)
                ~register:(fun c -> nodes := c :: !nodes))
           (Descriptor.make ~bootstrap:Descriptor.All n));
      Env.sleep 60.0;
      Alcotest.(check int) "all registered" n (List.length !nodes);
      (* every non-source node appears exactly once as a child in each tree *)
      for tree = 0 to 1 do
        let child_count = Hashtbl.create 32 in
        List.iter
          (fun t ->
            List.iter
              (fun a ->
                let k = Addr.to_string a in
                Hashtbl.replace child_count k (1 + Option.value ~default:0 (Hashtbl.find_opt child_count k)))
              (Apps.Trees.children t ~tree))
          !nodes;
        Alcotest.(check int)
          (Printf.sprintf "tree %d spans all non-source nodes" tree)
          (n - 1) (Hashtbl.length child_count);
        Hashtbl.iter
          (fun _ c -> Alcotest.(check int) "each node has one parent" 1 c)
          child_count
      done;
      (* everyone finished and the source finished first *)
      List.iter
        (fun t ->
          Alcotest.(check int) "all blocks" (Apps.Trees.total_blocks t) (Apps.Trees.blocks_received t);
          Alcotest.(check bool) "completed" true (Apps.Trees.completion_time t <> None))
        !nodes;
      let source = List.find Apps.Trees.is_source !nodes in
      let t_source = Option.get (Apps.Trees.completion_time source) in
      List.iter
        (fun t ->
          if not (Apps.Trees.is_source t) then
            Alcotest.(check bool) "receivers complete after source" true
              (Option.get (Apps.Trees.completion_time t) >= t_source))
        !nodes)

(* {2 Scribe} *)

let scribe_platform n f =
  with_platform (fun eng net ctl ->
      let pastries = ref [] in
      let scribes = ref [] in
      let main env =
        Apps.Pastry.app ~config:pastry_test_config
          ~register:(fun p ->
            pastries := p :: !pastries;
            scribes := Apps.Scribe.create p :: !scribes)
          env
      in
      ignore
        (Controller.deploy ctl ~name:"scribe" ~main
           (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      f eng net ctl !scribes)

let test_scribe_pubsub () =
  scribe_platform 20 (fun _ _ _ scribes ->
      let topic = Apps.Scribe.topic_of_name (List.hd scribes) "news" in
      let subscribers = List.filteri (fun i _ -> i < 10) scribes in
      List.iter (fun s -> Apps.Scribe.subscribe s ~topic) subscribers;
      Env.sleep 10.0;
      let publisher = List.nth scribes 15 in
      Apps.Scribe.publish publisher ~topic ~payload:"hello-world";
      Env.sleep 20.0;
      List.iteri
        (fun i s ->
          let got = List.exists (fun (t, p) -> t = topic && p = "hello-world") (Apps.Scribe.delivered s) in
          if i < 10 then
            Alcotest.(check bool) (Printf.sprintf "subscriber %d delivered" i) true got
          else
            Alcotest.(check bool) (Printf.sprintf "non-subscriber %d silent" i) false got)
        scribes)

let test_scribe_callback_and_unsubscribe () =
  scribe_platform 12 (fun _ _ _ scribes ->
      let topic = Apps.Scribe.topic_of_name (List.hd scribes) "feed" in
      let s = List.nth scribes 3 in
      let got = ref [] in
      Apps.Scribe.on_deliver s (fun ~topic:_ ~payload -> got := payload :: !got);
      Apps.Scribe.subscribe s ~topic;
      Env.sleep 5.0;
      Apps.Scribe.publish (List.nth scribes 7) ~topic ~payload:"a";
      Env.sleep 10.0;
      Apps.Scribe.unsubscribe s ~topic;
      Apps.Scribe.publish (List.nth scribes 7) ~topic ~payload:"b";
      Env.sleep 10.0;
      Alcotest.(check (list string)) "only pre-unsubscribe events" [ "a" ] !got)

(* {2 SplitStream} *)

let test_splitstream_delivers_content () =
  with_platform (fun _ _ ctl ->
      let n = 16 in
      let streams = ref [] in
      let main env =
        Apps.Pastry.app
          ~config:{ pastry_test_config with bits = 32 }
          ~register:(fun p ->
            let sc = Apps.Scribe.create p in
            streams := Apps.Splitstream.create sc ~stripes:4 ~name:"video" :: !streams)
          env
      in
      ignore
        (Controller.deploy ctl ~name:"splitstream" ~main
           (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      let subscribers = List.filteri (fun i _ -> i > 0) !streams in
      List.iter Apps.Splitstream.subscribe_all subscribers;
      Env.sleep 15.0;
      let content = String.init 4096 (fun i -> Char.chr (65 + (i mod 26))) in
      Apps.Splitstream.send (List.hd !streams) ~content ~block_size:256;
      Env.sleep 30.0;
      let ok = ref 0 in
      List.iter
        (fun s ->
          match Apps.Splitstream.reassembled s with
          | Some c when String.equal c content -> incr ok
          | _ -> ())
        subscribers;
      Alcotest.(check bool)
        (Printf.sprintf "most subscribers got the exact content (%d/%d)" !ok (n - 1))
        true
        (!ok >= n - 3))

(* {2 Web cache} *)

let test_webcache_hits_and_lru () =
  with_platform (fun _ _ ctl ->
      let n = 12 in
      let caches = ref [] in
      let wc_config =
        { Apps.Webcache.default_config with max_entries = 20; ttl = 1200.0; origin_delay_mean = 1.0 }
      in
      let main env =
        Apps.Pastry.app ~config:pastry_test_config
          ~register:(fun p -> caches := Apps.Webcache.create ~config:wc_config p :: !caches)
          env
      in
      ignore
        (Controller.deploy ctl ~name:"webcache" ~main
           (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      let client = List.hd !caches in
      (* first access misses and is slow; the repeat hits and is fast *)
      let _, k1, d1 = Apps.Webcache.get client "http://example.org/a" in
      let v2, k2, d2 = Apps.Webcache.get client "http://example.org/a" in
      (match k1 with `Miss -> () | _ -> Alcotest.fail "expected first-access miss");
      (match k2 with `Hit -> () | _ -> Alcotest.fail "expected repeat hit");
      Alcotest.(check bool) "hit faster than miss" true (d2 < d1 /. 2.0);
      Alcotest.(check bool) "content served" true
        (String.length v2 > 0 && String.sub v2 0 11 = "content-of:");
      (* LRU bound holds under many distinct URLs *)
      for i = 0 to 99 do
        ignore (Apps.Webcache.get client (Printf.sprintf "http://example.org/%d" i))
      done;
      List.iter
        (fun c ->
          Alcotest.(check bool) "per-node cache bounded" true (Apps.Webcache.cached_entries c <= 20))
        !caches)

let test_webcache_ttl_expiry () =
  with_platform (fun _ _ ctl ->
      let n = 8 in
      let caches = ref [] in
      let wc_config = { Apps.Webcache.default_config with ttl = 60.0; origin_delay_mean = 0.5 } in
      let main env =
        Apps.Pastry.app ~config:pastry_test_config
          ~register:(fun p -> caches := Apps.Webcache.create ~config:wc_config p :: !caches)
          env
      in
      ignore
        (Controller.deploy ctl ~name:"webcache" ~main
           (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      let client = List.hd !caches in
      let _, k1, _ = Apps.Webcache.get client "u" in
      let _, k2, _ = Apps.Webcache.get client "u" in
      Env.sleep 120.0;
      let _, k3, _ = Apps.Webcache.get client "u" in
      (match (k1, k2, k3) with
      | `Miss, `Hit, `Miss -> ()
      | _ -> Alcotest.fail "TTL expiry did not force a refetch"))

(* {2 BitTorrent} *)

let test_bittorrent_swarm_completes () =
  with_platform ~hosts:12 (fun _ _ ctl ->
      let n = 12 in
      let nodes = ref [] in
      let config =
        {
          Apps.Bittorrent.default_config with
          piece_size = 64 * 1024;
          choke_interval = 5.0;
          optimistic_interval = 10.0;
          tracker_interval = 20.0;
          rpc_timeout = 20.0;
        }
      in
      ignore
        (Controller.deploy ctl ~name:"bittorrent"
           ~main:
             (Apps.Bittorrent.app ~config ~file_size:(2 * 1024 * 1024)
                ~register:(fun c -> nodes := c :: !nodes))
           (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
      (* poll: stop as soon as the swarm is done, cap at 600 s *)
      let rec wait budget =
        if budget > 0.0 then begin
          Env.sleep 30.0;
          let all_done =
            List.length !nodes = n && List.for_all Apps.Bittorrent.complete !nodes
          in
          if not all_done then wait (budget -. 30.0)
        end
      in
      wait 600.0;
      Alcotest.(check int) "all registered" n (List.length !nodes);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "complete (%d/%d pieces)" (Apps.Bittorrent.pieces_have c)
               (Apps.Bittorrent.total_pieces c))
            true (Apps.Bittorrent.complete c);
          Alcotest.(check bool) "pieces on disk" true (Apps.Bittorrent.file_on_disk c))
        !nodes;
      let seed = List.find Apps.Bittorrent.is_initial_seed !nodes in
      Alcotest.(check bool) "seed uploaded" true (Apps.Bittorrent.uploaded_bytes seed > 0);
      (* leechers exchanged among themselves, not only with the seed *)
      let leecher_upload =
        List.fold_left
          (fun acc c -> if Apps.Bittorrent.is_initial_seed c then acc else acc + Apps.Bittorrent.uploaded_bytes c)
          0 !nodes
      in
      Alcotest.(check bool) "peer-to-peer exchange happened" true (leecher_upload > 0))


(* {2 Vivaldi network coordinates} *)

let test_vivaldi_predicts_rtts () =
  (* deploy coordinates on a wide-area testbed; after convergence the
     coordinate distance must predict true RTTs far better than a constant
     predictor *)
  let eng = Engine.create ~seed:71 () in
  let tb0 = Testbed.planetlab ~n:30 (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init 30 Fun.id) in
  let nodes = ref [] in
  ignore
    (Env.thread (Controller.env ctl) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown daemons;
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () ->
             let config = { Apps.Vivaldi.default_config with period = 2.0 } in
             ignore
               (Controller.deploy ctl ~name:"vivaldi"
                  ~main:(Apps.Vivaldi.app ~config ~register:(fun v -> nodes := v :: !nodes))
                  (Descriptor.make ~bootstrap:Descriptor.All 30));
             (* plenty of probe rounds to converge *)
             Env.sleep 600.0;
             List.iter
               (fun v -> Alcotest.(check bool) "nodes kept probing" true (Apps.Vivaldi.samples v > 50))
               !nodes;
             (* individual confidences bounce on jittery links; the median
                across the population must be low *)
             let errs = List.sort Float.compare (List.map Apps.Vivaldi.confidence_error !nodes) in
             let med_err = List.nth errs (List.length errs / 2) in
             Alcotest.(check bool)
               (Printf.sprintf "median confidence error %.2f below 0.6" med_err)
               true (med_err < 0.6);
             (* compare predicted vs true RTT over all pairs *)
             let arr = Array.of_list !nodes in
             let n = Array.length arr in
             let rel_errors = ref [] in
             for i = 0 to n - 1 do
               for j = i + 1 to n - 1 do
                 let predicted =
                   Apps.Vivaldi.distance
                     (Apps.Vivaldi.coordinate arr.(i))
                     (Apps.Vivaldi.coordinate arr.(j))
                 in
                 let actual =
                   Net.base_rtt net (Apps.Vivaldi.addr arr.(i)).Addr.host
                     (Apps.Vivaldi.addr arr.(j)).Addr.host
                 in
                 rel_errors := (Float.abs (predicted -. actual) /. actual) :: !rel_errors
               done
             done;
             let sorted = List.sort Float.compare !rel_errors in
             let median = List.nth sorted (List.length sorted / 2) in
             Alcotest.(check bool)
               (Printf.sprintf "median relative error %.0f%% below 40%%" (100.0 *. median))
               true (median < 0.40))));
  ignore (Engine.run ~until:100_000.0 eng);
  match Engine.crashed eng with
  | [] -> ()
  | (p, e) :: _ ->
      Alcotest.failf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e)


(* {2 DHT storage (replicated key-value on Pastry)} *)

let dht_platform n f =
  with_platform ~hosts:12 (fun eng net ctl ->
      let stores = ref [] in
      let config = { pastry_test_config with bits = 16 } in
      let kv_config =
        { Apps.Dht_store.default_config with republish_interval = 10.0; entry_ttl = 3600.0; rpc_timeout = 3.0 }
      in
      let main env =
        Apps.Pastry.app ~config
          ~register:(fun p -> stores := Apps.Dht_store.create ~config:kv_config p :: !stores)
          env
      in
      let dep =
        Controller.deploy ctl ~name:"dht-store" ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
      in
      Env.sleep (Float.of_int n *. 0.3 +. 120.0);
      f eng net ctl dep !stores)

let test_dht_put_get_roundtrip () =
  dht_platform 16 (fun _ _ _ _ stores ->
      let writer = List.hd stores and reader = List.nth stores 9 in
      let acks = Apps.Dht_store.put writer ~key:"alpha" ~value:"42" in
      Alcotest.(check int) "all replicas stored" 3 acks;
      Alcotest.(check (option string)) "read from another node" (Some "42")
        (Apps.Dht_store.get reader ~key:"alpha");
      Alcotest.(check (option string)) "missing key" None
        (Apps.Dht_store.get reader ~key:"nonexistent");
      (* overwrite *)
      ignore (Apps.Dht_store.put writer ~key:"alpha" ~value:"43");
      Alcotest.(check (option string)) "overwritten" (Some "43")
        (Apps.Dht_store.get reader ~key:"alpha");
      (* replicas live on multiple physical nodes *)
      let holders = List.length (List.filter (fun s -> Apps.Dht_store.stored_entries s > 0) stores) in
      Alcotest.(check bool) (Printf.sprintf "replicas spread (%d holders)" holders) true (holders >= 2))

let test_dht_survives_owner_crashes () =
  dht_platform 20 (fun _ _ _ dep stores ->
      let writer = List.hd stores in
      for i = 0 to 19 do
        ignore (Apps.Dht_store.put writer ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i))
      done;
      (* crash a quarter of the ring, wait for repair + republish *)
      List.iteri
        (fun i (_, a, _) -> if i mod 4 = 1 then Controller.crash_node dep a)
        (Controller.live_members dep);
      Env.sleep 60.0;
      let reader = List.find (fun s -> s != writer) stores in
      let found = ref 0 in
      for i = 0 to 19 do
        match Apps.Dht_store.get reader ~key:(Printf.sprintf "k%d" i) with
        | Some v when v = Printf.sprintf "v%d" i -> incr found
        | _ -> ()
      done;
      (* with 3 salted replicas on a 20-node ring, a couple of keys can
         land all their replicas on crashed nodes (or on one another) *)
      Alcotest.(check bool) (Printf.sprintf "data survives crashes (%d/20)" !found) true (!found >= 17))

let test_dht_delete () =
  dht_platform 12 (fun _ _ _ _ stores ->
      let s = List.hd stores in
      ignore (Apps.Dht_store.put s ~key:"gone" ~value:"soon");
      Alcotest.(check bool) "present" true (Apps.Dht_store.get s ~key:"gone" <> None);
      let acks = Apps.Dht_store.delete s ~key:"gone" in
      Alcotest.(check bool) "deletes acknowledged" true (acks >= 3);
      Alcotest.(check (option string)) "gone" None (Apps.Dht_store.get s ~key:"gone"))

let test_dht_data_migrates_on_join () =
  dht_platform 10 (fun _ _ _ dep stores ->
      let s = List.hd stores in
      for i = 0 to 9 do
        ignore (Apps.Dht_store.put s ~key:(Printf.sprintf "m%d" i) ~value:"x")
      done;
      (* grow the ring; after republish rounds the data is still readable
         even though ownership boundaries moved *)
      for _ = 1 to 5 do
        ignore (Controller.add_node dep)
      done;
      Env.sleep 90.0;
      let ok = ref 0 in
      for i = 0 to 9 do
        if Apps.Dht_store.get s ~key:(Printf.sprintf "m%d" i) = Some "x" then incr ok
      done;
      Alcotest.(check int) "all keys readable after joins" 10 !ok)

let () =
  Alcotest.run "splay_apps"
    [
      ( "chord",
        [
          Alcotest.test_case "ring converges" `Quick test_chord_ring_converges;
          Alcotest.test_case "lookup correct" `Quick test_chord_lookup_correct;
          Alcotest.test_case "hops logarithmic" `Quick test_chord_hops_logarithmic;
          Alcotest.test_case "finger invariant" `Quick test_chord_fingers_exact;
          Alcotest.test_case "assemble routes correctly" `Quick
            test_chord_assemble_routes_correctly;
        ] );
      ( "chord_ft",
        [
          Alcotest.test_case "converges with leafsets" `Quick test_chord_ft_converges_and_replicates;
          Alcotest.test_case "survives failures" `Quick test_chord_ft_survives_failures;
        ] );
      ( "pastry",
        [
          Alcotest.test_case "converges" `Quick test_pastry_converges;
          Alcotest.test_case "lookup correct" `Quick test_pastry_lookup_correct;
          Alcotest.test_case "survives churn" `Quick test_pastry_survives_churn;
          Alcotest.test_case "proximity tables" `Quick test_pastry_proximity_prefers_close_entries;
          Alcotest.test_case "assemble routes correctly" `Quick
            test_pastry_assemble_routes_correctly;
        ] );
      ("cyclon", [ Alcotest.test_case "mixes and stays connected" `Quick test_cyclon_mixes ]);
      ( "epidemic",
        [
          Alcotest.test_case "coverage" `Quick test_epidemic_coverage;
          Alcotest.test_case "one-way coverage" `Quick test_epidemic_oneway_coverage;
        ] );
      ("trees", [ Alcotest.test_case "structure and completion" `Quick test_trees_structure_and_completion ]);
      ( "scribe",
        [
          Alcotest.test_case "pubsub" `Quick test_scribe_pubsub;
          Alcotest.test_case "callbacks and unsubscribe" `Quick test_scribe_callback_and_unsubscribe;
        ] );
      ("splitstream", [ Alcotest.test_case "delivers content" `Quick test_splitstream_delivers_content ]);
      ( "webcache",
        [
          Alcotest.test_case "hits and lru" `Quick test_webcache_hits_and_lru;
          Alcotest.test_case "ttl expiry" `Quick test_webcache_ttl_expiry;
        ] );
      ("bittorrent", [ Alcotest.test_case "swarm completes" `Quick test_bittorrent_swarm_completes ]);
      ("vivaldi", [ Alcotest.test_case "predicts rtts" `Quick test_vivaldi_predicts_rtts ]);
      ( "dht_store",
        [
          Alcotest.test_case "put get roundtrip" `Quick test_dht_put_get_roundtrip;
          Alcotest.test_case "survives owner crashes" `Quick test_dht_survives_owner_crashes;
          Alcotest.test_case "delete" `Quick test_dht_delete;
          Alcotest.test_case "data migrates on join" `Quick test_dht_data_migrates_on_join;
        ] );
    ]
