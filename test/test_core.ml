(* Tests for the Splay facade (Platform) and the comparator baselines. *)

open Splay
module Apps = Splay_apps
module Baselines = Splay_baselines

let teardown p =
  List.iter Daemon.shutdown (Platform.daemons p);
  ignore
    (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
         Env.stop (Controller.env (Platform.controller p))))

(* {2 Platform} *)

let test_platform_specs () =
  List.iter
    (fun (spec, expected_hosts) ->
      let p = Platform.create ~seed:1 spec in
      (* testbed = requested hosts + the controller host *)
      Alcotest.(check int) "testbed size" (expected_hosts + 1) (Testbed.size (Platform.testbed p));
      Alcotest.(check int) "one daemon per host" expected_hosts
        (List.length (Platform.daemons p)))
    [
      (Platform.Planetlab 12, 12);
      (Platform.Modelnet { hosts = 15; bandwidth = None }, 15);
      (Platform.Cluster 7, 7);
      (Platform.Mixed { planetlab = 4; modelnet = 6 }, 10);
    ]

let test_platform_run_deploys () =
  let p = Platform.create ~seed:2 (Platform.Cluster 5) in
  let count = ref 0 in
  Platform.run p (fun p ->
      let dep =
        Controller.deploy (Platform.controller p) ~name:"probe"
          ~main:(fun _ -> incr count)
          (Descriptor.make 10)
      in
      Env.sleep 5.0;
      Alcotest.(check int) "instances ran" 10 !count;
      Alcotest.(check int) "all live" 10 (Controller.live_count dep);
      teardown p)

let test_platform_run_propagates_crash () =
  let p = Platform.create ~seed:3 (Platform.Cluster 2) in
  match
    Platform.run p (fun p ->
        ignore
          (Env.thread (Controller.env (Platform.controller p)) (fun () -> failwith "boom"));
        Env.sleep 1.0;
        teardown p)
  with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions the crash" true
        (String.length msg > 0 && String.sub msg 0 7 = "process")
  | () -> Alcotest.fail "crash not surfaced"

let test_platform_determinism () =
  let run () =
    let p = Platform.create ~seed:99 (Platform.Planetlab 8) in
    let out = ref 0.0 in
    Platform.run p (fun p ->
        let dep =
          Controller.deploy (Platform.controller p) ~name:"noop"
            ~main:(fun _ -> ())
            (Descriptor.make 5)
        in
        out := Platform.now p;
        Controller.undeploy dep;
        teardown p);
    !out
  in
  Alcotest.(check (float 1e-12)) "same seed, same timeline" (run ()) (run ())

(* {2 Baselines} *)

let test_freepastry_contention_model () =
  let light = Baselines.Freepastry.daemon_config.Daemon.contention_extra 50 in
  let heavy = Baselines.Freepastry.daemon_config.Daemon.contention_extra 180 in
  Alcotest.(check (float 1e-9)) "no extra below the knee" 0.0 light;
  Alcotest.(check bool) "superlinear past the knee" true (heavy > 10.0);
  Alcotest.(check bool) "JVM-scale footprint" true
    (Baselines.Freepastry.daemon_config.Daemon.base_footprint > 8 * 1024 * 1024);
  Alcotest.(check bool) "per-hop overhead set" true
    (Baselines.Freepastry.app_config.Apps.Pastry.per_hop_overhead > 0.0)

let test_mit_chord_config () =
  Alcotest.(check bool) "proximity fingers on" true
    Baselines.Mit_chord.app_config.Apps.Chord_ft.proximity_fingers;
  Alcotest.(check bool) "splay chord has them off" false
    Apps.Chord_ft.default_config.Apps.Chord_ft.proximity_fingers

let test_crcp_matches_trees_topology () =
  (* the two implementations must build the same trees, or Fig. 13 would
     compare different protocols *)
  let p = Platform.create ~seed:4 (Platform.Cluster 8) in
  Platform.run p (fun p ->
      let ctl = Platform.controller p in
      let splay_handles = ref [] and crcp_handles = ref [] in
      let n = 14 in
      ignore
        (Controller.deploy ctl ~name:"trees"
           ~main:
             (Apps.Trees.app ~file_size:(256 * 1024)
                ~register:(fun x -> splay_handles := x :: !splay_handles))
           (Descriptor.make ~bootstrap:Descriptor.All n));
      ignore
        (Controller.deploy ctl ~name:"crcp"
           ~main:
             (Baselines.Crcp.app ~file_size:(256 * 1024)
                ~register:(fun x -> crcp_handles := x :: !crcp_handles))
           (Descriptor.make ~bootstrap:Descriptor.All n));
      Env.sleep 60.0;
      let sort_by_pos get_pos l = List.sort (fun a b -> Int.compare (get_pos a) (get_pos b)) l in
      let s = sort_by_pos Apps.Trees.position !splay_handles in
      let c = sort_by_pos Baselines.Crcp.position !crcp_handles in
      List.iter2
        (fun sh ch ->
          for tree = 0 to 1 do
            let ports l = List.sort Int.compare (List.map (fun a -> a.Addr.port) l) in
            (* same fan-out structure: equal child counts per tree level *)
            Alcotest.(check int)
              (Printf.sprintf "same child count (pos %d tree %d)" (Apps.Trees.position sh) tree)
              (List.length (ports (Apps.Trees.children sh ~tree)))
              (List.length (ports (Baselines.Crcp.children ch ~tree)))
          done)
        s c;
      (* both deliveries complete *)
      List.iter
        (fun x -> Alcotest.(check bool) "splay complete" true (Apps.Trees.completion_time x <> None))
        s;
      List.iter
        (fun x -> Alcotest.(check bool) "crcp complete" true (Baselines.Crcp.completion_time x <> None))
        c;
      teardown p)

let test_crcp_slower_on_thin_links () =
  (* sequential acknowledged sends vs pipelined fire-and-forget: on slow
     links CRCP must finish later (Fig. 13's shape) *)
  let run_one which =
    let p =
      Platform.create ~seed:5
        (Platform.Modelnet { hosts = 18; bandwidth = Some (2_000_000.0 /. 8.0) })
    in
    let finish = ref 0.0 in
    Platform.run p (fun p ->
        let ctl = Platform.controller p in
        let file_size = 1024 * 1024 in
        let done_splay = ref [] and done_crcp = ref [] in
        (match which with
        | `Splay ->
            ignore
              (Controller.deploy ctl ~name:"trees"
                 ~main:(Apps.Trees.app ~file_size ~register:(fun x -> done_splay := x :: !done_splay))
                 (Descriptor.make ~bootstrap:Descriptor.All 16))
        | `Crcp ->
            ignore
              (Controller.deploy ctl ~name:"crcp"
                 ~main:
                   (Baselines.Crcp.app ~file_size ~register:(fun x -> done_crcp := x :: !done_crcp))
                 (Descriptor.make ~bootstrap:Descriptor.All 16)));
        let all_done () =
          match which with
          | `Splay ->
              List.length !done_splay = 16
              && List.for_all (fun x -> Apps.Trees.completion_time x <> None) !done_splay
          | `Crcp ->
              List.length !done_crcp = 16
              && List.for_all (fun x -> Baselines.Crcp.completion_time x <> None) !done_crcp
        in
        let rec wait () =
          Env.sleep 10.0;
          if not (all_done ()) then wait ()
        in
        wait ();
        let times =
          match which with
          | `Splay -> List.filter_map Apps.Trees.completion_time !done_splay
          | `Crcp -> List.filter_map Baselines.Crcp.completion_time !done_crcp
        in
        finish := List.fold_left Float.max 0.0 times;
        teardown p);
    !finish
  in
  let splay_t = run_one `Splay and crcp_t = run_one `Crcp in
  Alcotest.(check bool)
    (Printf.sprintf "crcp finishes later (%.1f s vs %.1f s)" crcp_t splay_t)
    true (crcp_t > splay_t)

(* {2 Bench harness CLI} *)

(* The bench output flags must fail loudly on a bare or empty value —
   silently keeping the default would overwrite the committed baseline the
   caller meant to redirect. The exe is a declared test dep; flag errors
   exit before any experiment runs, so these are fast. *)
let bench_exe () =
  let local = "../bench/main.exe" in
  if Sys.file_exists local then Some local else None

let test_bench_out_flag_errors () =
  match bench_exe () with
  | None -> () (* run outside the dune sandbox; nothing to exercise *)
  | Some exe ->
      let run args = Sys.command (Filename.quote_command exe args ~stdout:Filename.null ~stderr:Filename.null) in
      List.iter
        (fun args ->
          Alcotest.(check int)
            (String.concat " " ("exit 2 for" :: args))
            2 (run args))
        [
          [ "--bench-out=" ];
          [ "--bench-out" ];
          [ "--bench-macro-out=" ];
          [ "--bench-macro-out" ];
          [ "--bench-out"; "somewhere.json" ];
        ];
      (* a well-formed output flag still reaches normal argument handling *)
      Alcotest.(check int) "exit 0 for valid flag + --list" 0
        (run [ "--bench-out=_bench_flag_test.json"; "--list" ])

let () =
  Alcotest.run "splay_core"
    [
      ( "bench-cli",
        [ Alcotest.test_case "bench-out flag errors" `Quick test_bench_out_flag_errors ] );
      ( "platform",
        [
          Alcotest.test_case "specs" `Quick test_platform_specs;
          Alcotest.test_case "run deploys" `Quick test_platform_run_deploys;
          Alcotest.test_case "crash propagates" `Quick test_platform_run_propagates_crash;
          Alcotest.test_case "determinism" `Quick test_platform_determinism;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "freepastry contention" `Quick test_freepastry_contention_model;
          Alcotest.test_case "mit chord config" `Quick test_mit_chord_config;
          Alcotest.test_case "crcp topology matches" `Quick test_crcp_matches_trees_topology;
          Alcotest.test_case "crcp slower on thin links" `Quick test_crcp_slower_on_thin_links;
        ] );
    ]
